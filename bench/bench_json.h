#ifndef MATCHCATCHER_BENCH_BENCH_JSON_H_
#define MATCHCATCHER_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace mc {
namespace bench {

/// Minimal streaming JSON writer for the machine-readable benchmark records
/// (BENCH_ssj.json and friends). Emits valid JSON with deterministic
/// formatting so perf records diff cleanly across PRs. No external
/// dependencies; the schema is validated in CI by
/// tools/validate_bench_json.py (the bench-smoke step of tools/ci.sh).
///
/// Usage:
///   JsonWriter json(out);
///   json.BeginObject();
///   json.KV("schema_version", uint64_t{1});
///   json.Key("results");
///   json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next key/value pair (objects only).
  void Key(std::string_view key);

  /// Value emitters (array elements, or after Key() in an object).
  void String(std::string_view value);
  void Double(double value);
  void UInt(uint64_t value);
  void Bool(bool value);

  /// Convenience: Key() followed by the value.
  void KV(std::string_view key, std::string_view value);
  void KV(std::string_view key, const char* value);
  void KV(std::string_view key, double value);
  void KV(std::string_view key, uint64_t value);
  void KV(std::string_view key, bool value);

 private:
  void BeforeValue();

  std::ostream& out_;
  // One entry per open container: whether a comma is needed before the next
  // element.
  std::vector<bool> needs_comma_{false};
};

}  // namespace bench
}  // namespace mc

#endif  // MATCHCATCHER_BENCH_BENCH_JSON_H_
