#include "paper_blockers.h"

#include "blocking/rule_blocker.h"
#include "blocking/standard_blockers.h"
#include "util/check.h"

namespace mc {
namespace bench {

namespace {

std::shared_ptr<const Blocker> Overlap(size_t column, size_t count) {
  return std::make_shared<OverlapBlocker>(column, TokenizerSpec::Word(),
                                          count);
}

std::shared_ptr<const Blocker> Sim(size_t column, TokenizerSpec tokenizer,
                                   SetMeasure measure, double threshold) {
  return std::make_shared<SimilarityBlocker>(column, tokenizer, measure,
                                             threshold);
}

std::shared_ptr<const Blocker> Hash(size_t column,
                                    KeyFunction::Kind kind =
                                        KeyFunction::Kind::kFullValue,
                                    size_t param = 0) {
  return std::make_shared<HashBlocker>(KeyFunction(kind, column, param));
}

std::shared_ptr<const Blocker> Union(
    std::vector<std::shared_ptr<const Blocker>> members) {
  return std::make_shared<UnionBlocker>(std::move(members));
}

std::shared_ptr<const PairPredicate> SimPred(size_t column,
                                             TokenizerSpec tokenizer,
                                             SetMeasure measure,
                                             double threshold) {
  return std::make_shared<SetSimilarityPredicate>(column, tokenizer, measure,
                                                  threshold);
}

std::shared_ptr<const PairPredicate> DiffPred(size_t column, double max) {
  return std::make_shared<NumericDiffPredicate>(column, max);
}

}  // namespace

std::vector<PaperBlocker> PaperBlockersFor(const std::string& dataset,
                                           const Schema& schema) {
  auto col = [&](const char* name) { return schema.RequireIndexOf(name); };
  const TokenizerSpec word = TokenizerSpec::Word();
  const TokenizerSpec gram3 = TokenizerSpec::QGram(3);

  if (dataset == "A-G") {
    return {
        {"OL", Overlap(col("title"), 3)},
        {"HASH", Hash(col("manufacturer"))},
        {"SIM", Sim(col("title"), word, SetMeasure::kCosine, 0.4)},
        // (R) drop: title_jac_word<0.2 AND manuf_jac_3gram<0.4
        // keep:     title_jac_word>=0.2 OR manuf_jac_3gram>=0.4.
        {"R", Union({Sim(col("title"), word, SetMeasure::kJaccard, 0.2),
                     Sim(col("manufacturer"), gram3, SetMeasure::kJaccard,
                         0.4)})},
    };
  }
  if (dataset == "W-A") {
    return {
        {"OL", Overlap(col("title"), 3)},
        {"HASH", Hash(col("brand"))},
        {"SIM", Sim(col("title"), word, SetMeasure::kCosine, 0.4)},
        // (R) drop: price_absdiff>20 OR title_jac_word<0.5
        // keep:     price_absdiff<=20 AND title_jac_word>=0.5.
        {"R", std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{
             ConjunctiveRule(
                 {SimPred(col("title"), word, SetMeasure::kJaccard, 0.5),
                  DiffPred(col("price"), 20.0)})})},
    };
  }
  if (dataset == "A-D") {
    return {
        {"OL", Overlap(col("authors"), 2)},
        {"SIM", Sim(col("title"), gram3, SetMeasure::kJaccard, 0.7)},
        // (R1) drop: title_cos_word<0.8 AND authors_jac_3gram<0.8.
        {"R1", Union({Sim(col("title"), word, SetMeasure::kCosine, 0.8),
                      Sim(col("authors"), gram3, SetMeasure::kJaccard,
                          0.8)})},
        // (R2) drop: year_absdiff>0.5 OR title_jac_word<0.7.
        {"R2", std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{
             ConjunctiveRule(
                 {SimPred(col("title"), word, SetMeasure::kJaccard, 0.7),
                  DiffPred(col("year"), 0.5)})})},
    };
  }
  if (dataset == "F-Z") {
    return {
        {"OL", Overlap(col("name"), 2)},
        {"HASH", Hash(col("city"))},
        {"SIM", Sim(col("addr"), gram3, SetMeasure::kJaccard, 0.3)},
        // (R) drop: (name_cos<0.5 AND type_jac3<0.7) OR addr_jac3<0.3
        // keep: addr_jac3>=0.3 AND (name_cos>=0.5 OR type_jac3>=0.7).
        {"R", std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{
             ConjunctiveRule(
                 {SimPred(col("name"), word, SetMeasure::kCosine, 0.5),
                  SimPred(col("addr"), gram3, SetMeasure::kJaccard, 0.3)}),
             ConjunctiveRule(
                 {SimPred(col("type"), gram3, SetMeasure::kJaccard, 0.7),
                  SimPred(col("addr"), gram3, SetMeasure::kJaccard,
                          0.3)})})},
    };
  }
  if (dataset == "M1") {
    return {
        {"OL", Overlap(col("artist_name"), 2)},
        // Raw (case-sensitive) hash: how off-the-shelf EM tools block, and
        // the source of the "input tables are not lower-cased" finding.
        {"HASH", Hash(col("artist_name"), KeyFunction::Kind::kRawValue)},
        {"SIM", Sim(col("title"), word, SetMeasure::kCosine, 0.5)},
        {"R", std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{
             ConjunctiveRule(
                 {SimPred(col("title"), word, SetMeasure::kCosine, 0.7),
                  DiffPred(col("year"), 0.5)})})},
    };
  }
  if (dataset == "M2") {
    return {
        {"HASH1", Hash(col("artist_name"), KeyFunction::Kind::kRawValue)},
        {"HASH2",
         Union({Hash(col("release"), KeyFunction::Kind::kRawValue),
                Hash(col("artist_name"), KeyFunction::Kind::kRawValue)})},
        {"SIM1", Sim(col("title"), word, SetMeasure::kCosine, 0.6)},
        {"SIM2", Sim(col("title"), word, SetMeasure::kCosine, 0.7)},
        {"SIM3", Sim(col("title"), word, SetMeasure::kCosine, 0.8)},
    };
  }
  if (dataset == "Papers") {
    // Stand-ins for the three crowdsource-learned blockers of §6.2: rule
    // blockers of the shape the Falcon-style learner produces (benches also
    // learn real ones with LearnBlocker; these fixed ones keep the runtime
    // experiments deterministic).
    return {
        {"R1", std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{
             ConjunctiveRule(
                 {SimPred(col("title"), word, SetMeasure::kJaccard, 0.5),
                  DiffPred(col("year"), 1.0)})})},
        {"R2", Union({Sim(col("authors"), gram3, SetMeasure::kJaccard, 0.6),
                      Sim(col("title"), word, SetMeasure::kCosine, 0.7)})},
        {"R3", Union({Overlap(col("keywords"), 2),
                      Sim(col("title"), gram3, SetMeasure::kJaccard, 0.6)})},
    };
  }
  MC_CHECK(false) << "no paper blockers for dataset" << dataset;
  return {};
}

std::shared_ptr<const Blocker> BestHashBlockerFor(const std::string& dataset,
                                                  const Schema& schema) {
  auto col = [&](const char* name) { return schema.RequireIndexOf(name); };
  if (dataset == "A-G") {
    // "agree on manufacturer, or on a hash of price, or on a hash of title".
    return Union({Hash(col("manufacturer")),
                  Hash(col("price"), KeyFunction::Kind::kNumericBucket, 10),
                  Hash(col("title"))});
  }
  if (dataset == "W-A") {
    return Union({Hash(col("brand")), Hash(col("modelno")),
                  Hash(col("price"), KeyFunction::Kind::kNumericBucket, 20),
                  Hash(col("title"))});
  }
  if (dataset == "A-D") {
    return Union({Hash(col("title")), Hash(col("authors")),
                  Hash(col("pages"))});
  }
  if (dataset == "F-Z") {
    return Union({Hash(col("name")),
                  Hash(col("phone"), KeyFunction::Kind::kRawValue),
                  Hash(col("addr"))});
  }
  if (dataset == "M1") {
    // The duration hash is what pushes this one to 100% recall — duration
    // is never dirty in this corpus, mirroring the paper's M1 where the
    // best hash blocker also reached 100% and debugging terminated early.
    return Union({Hash(col("artist_name")), Hash(col("title")),
                  Hash(col("release")), Hash(col("duration"))});
  }
  MC_CHECK(false) << "no best hash blocker for dataset" << dataset;
  return nullptr;
}

std::shared_ptr<const Blocker> ImprovedBlockerFor(const std::string& dataset,
                                                  const Schema& schema) {
  auto col = [&](const char* name) { return schema.RequireIndexOf(name); };
  const TokenizerSpec word = TokenizerSpec::Word();
  const TokenizerSpec gram3 = TokenizerSpec::QGram(3);
  std::shared_ptr<const Blocker> hash = BestHashBlockerFor(dataset, schema);
  if (dataset == "A-G") {
    // Debugging surfaced sprinkled manufacturers and title typos: add
    // similarity rules on title and manufacturer.
    return Union({hash, Sim(col("title"), word, SetMeasure::kJaccard, 0.25),
                  Sim(col("manufacturer"), gram3, SetMeasure::kJaccard,
                      0.5)});
  }
  if (dataset == "W-A") {
    // Brand variants, missing brands, model typos: title similarity plus a
    // fuzzy model-number rule.
    return Union({hash, Sim(col("title"), word, SetMeasure::kJaccard, 0.4),
                  std::make_shared<EditDistanceBlocker>(
                      KeyFunction(KeyFunction::Kind::kFullValue,
                                  col("modelno")),
                      1)});
  }
  if (dataset == "F-Z") {
    // Misspelled names and unnormalized addresses: fuzzy name + address.
    return Union({hash, Sim(col("name"), word, SetMeasure::kJaccard, 0.5),
                  Sim(col("addr"), gram3, SetMeasure::kJaccard, 0.4)});
  }
  // A-D and M1 best hash blockers already reach 100% recall; debugging
  // terminates early with nothing to fix (as in the paper).
  return hash;
}

}  // namespace bench
}  // namespace mc
