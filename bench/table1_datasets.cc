// Table 1: the datasets. Prints the generated stand-ins for the paper's
// seven datasets: tuple type, |A|, |B|, number of gold matches, number of
// attributes, and average tuple length (word tokens per tuple, per table).
// Also prints each dataset's injected-problem histogram — the ground truth
// behind the Table 4 "blocker problems" findings.

#include <iostream>

#include "bench_common.h"
#include "table/profile.h"

namespace mc {
namespace bench {
namespace {

double AverageTupleTokens(const Table& table) {
  double total = 0.0;
  for (const AttributeProfile& profile : ProfileTable(table)) {
    total += profile.average_token_length;
  }
  return total;
}

void Describe(const std::string& name, const std::string& tuple_type) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  std::cout << Cell(dataset.name, 8) << Cell(tuple_type, 20)
            << Cell(dataset.table_a.num_rows(), 9)
            << Cell(dataset.table_b.num_rows(), 9)
            << Cell(dataset.gold.size(), 10)
            << Cell(dataset.table_a.schema().size(), 7)
            << Cell(AverageTupleTokens(dataset.table_a), 7, 1)
            << Cell(AverageTupleTokens(dataset.table_b), 7, 1) << "\n";
  auto histogram = dataset.ProblemHistogram();
  std::cout << "        injected problems:";
  size_t shown = 0;
  for (const auto& [tag, count] : histogram) {
    if (shown++ == 4) break;
    std::cout << " " << tag << " (" << count << ")";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Table 1: datasets (synthetic stand-ins; see DESIGN.md "
               "substitutions) ===\n"
            << mc::bench::Cell("name", 8) << mc::bench::Cell("tuple type", 20)
            << mc::bench::Cell("|A|", 9) << mc::bench::Cell("|B|", 9)
            << mc::bench::Cell("#matches", 10)
            << mc::bench::Cell("#attrs", 7) << mc::bench::Cell("len_A", 7)
            << mc::bench::Cell("len_B", 7) << "\n";
  mc::bench::Describe("A-G", "software product");
  mc::bench::Describe("W-A", "electronic product");
  mc::bench::Describe("A-D", "paper");
  mc::bench::Describe("F-Z", "restaurant");
  mc::bench::Describe("M1", "song");
  mc::bench::Describe("M2", "song");
  mc::bench::Describe("Papers", "paper");
  std::cout << "\n(average length = word tokens per tuple; large datasets "
               "run at the scale printed above,\ncontrolled by "
               "MC_BENCH_SCALE)\n";
  return 0;
}
