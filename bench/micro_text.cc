// Microbenchmark for the tokenize-once text plane (table/tokenized_table.h):
// times the text-heavy pipeline stages — table profiling, promising-column
// corpus build, and pair featurization — on the legacy per-call string
// tokenizer vs. the shared TokenizedTable span reads.
//
// `--json=PATH` emits a machine-readable stage-timing record;
// bench/BENCH_text.json archives the before/after pair of the text-plane PR,
// both produced by this binary:
//
//   before:  --text-plane=legacy
//   after:   --text-plane=tokenized (default)
//
// The tokenized record re-runs one legacy repetition and reports whether the
// profile / corpus / feature checksums are identical (the bit-identity
// contract of tests/text_plane_equivalence_test.cc).
//
// Knobs: --engine=LABEL, --dataset=amazon_google|music, --scale=F (default
// 1.0), --reps=N (default 3), --threads=N (default 8), --pairs=N (default
// 20000), --text-plane=legacy|tokenized.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "config/config_generator.h"
#include "datagen/generator.h"
#include "learn/features.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "table/profile.h"
#include "table/tokenized_table.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  std::string dataset = "amazon_google";
  double scale = 1.0;
  size_t reps = 3;
  size_t threads = 8;
  size_t pairs = 20000;
  bool tokenized = true;
};

struct StageTiming {
  double best = 0.0;
  double total = 0.0;
  bool recorded = false;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
    recorded = true;
  }
  double mean(size_t reps) const {
    return total / static_cast<double>(reps);
  }
};

// The three output checksums compared across engines: bit-identical
// profiles, corpus arenas, and feature vectors are the PR's contract.
struct Checksums {
  uint32_t profile = 0;
  uint32_t corpus = 0;
  uint32_t features = 0;

  bool operator==(const Checksums& other) const {
    return profile == other.profile && corpus == other.corpus &&
           features == other.features;
  }
};

uint32_t CrcDouble(double value, uint32_t crc) {
  return Crc32(&value, sizeof(value), crc);
}

uint32_t ProfileChecksum(const std::vector<AttributeProfile>& profiles,
                         uint32_t crc) {
  for (const AttributeProfile& profile : profiles) {
    crc = CrcDouble(profile.non_missing_ratio, crc);
    crc = CrcDouble(profile.unique_ratio, crc);
    crc = CrcDouble(profile.average_token_length, crc);
    crc = CrcDouble(profile.SingleTableEScore(), crc);
  }
  return crc;
}

uint32_t CorpusChecksum(const SsjCorpus& corpus) {
  uint32_t crc = 0;
  const uint64_t dictionary = corpus.dictionary().size();
  crc = Crc32(&dictionary, sizeof(dictionary), crc);
  auto side = [&](size_t rows, bool is_a) {
    for (size_t row = 0; row < rows; ++row) {
      TupleTokens tuple =
          is_a ? corpus.tuple_a(row) : corpus.tuple_b(row);
      crc = Crc32(tuple.ranks, tuple.length * sizeof(uint32_t), crc);
      crc = Crc32(tuple.masks, tuple.length * sizeof(uint32_t), crc);
    }
  };
  side(corpus.rows_a(), true);
  side(corpus.rows_b(), false);
  return crc;
}

// Deterministic dense-ish probe of cross-table pairs for featurization:
// strides through both tables so every attribute mix is hit.
std::vector<PairId> FeaturePairs(size_t rows_a, size_t rows_b, size_t count) {
  std::vector<PairId> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.push_back(MakePairId(static_cast<RowId>(i % rows_a),
                               static_cast<RowId>((i * 7 + 3) % rows_b)));
  }
  return pairs;
}

struct RepResult {
  Checksums checksums;
  double plane_seconds = 0.0;
  double profile_seconds = 0.0;
  double corpus_seconds = 0.0;
  double featurize_seconds = 0.0;
};

// One full pipeline repetition over copies of the tables. `tokenized`
// builds and attaches the plane first (timed); the stages themselves are
// identical code — the plane fast paths engage through SharedTextPlane.
RepResult RunOnce(const Table& input_a, const Table& input_b,
                  const std::vector<size_t>& columns,
                  const std::vector<PairId>& pairs, size_t threads,
                  bool tokenized) {
  RepResult result;
  Table table_a = input_a;
  Table table_b = input_b;
  table_a.DetachTextPlane();
  table_b.DetachTextPlane();
  if (tokenized) {
    Stopwatch plane_watch;
    TextPlaneBuildOptions plane_options;
    plane_options.num_threads = threads;
    TokenizedTable::BuildAndAttach(table_a, table_b, plane_options);
    result.plane_seconds = plane_watch.ElapsedSeconds();
    MC_CHECK(SharedTextPlane(table_a, table_b) != nullptr);
  }

  Stopwatch profile_watch;
  uint32_t profile_crc = ProfileChecksum(ProfileTable(table_a), 0);
  result.checksums.profile =
      ProfileChecksum(ProfileTable(table_b), profile_crc);
  result.profile_seconds = profile_watch.ElapsedSeconds();

  Stopwatch corpus_watch;
  CorpusBuildOptions build_options;
  build_options.num_threads = threads;
  SsjCorpus corpus = SsjCorpus::Build(table_a, table_b, columns, build_options);
  result.checksums.corpus = CorpusChecksum(corpus);
  result.corpus_seconds = corpus_watch.ElapsedSeconds();

  Stopwatch featurize_watch;
  PairFeatureExtractor extractor(&table_a, &table_b);
  uint32_t feature_crc = 0;
  for (PairId pair : pairs) {
    FeatureVector features = extractor.Extract(pair);
    feature_crc =
        Crc32(features.data(), features.size() * sizeof(double), feature_crc);
  }
  result.checksums.features = feature_crc;
  result.featurize_seconds = featurize_watch.ElapsedSeconds();
  return result;
}

int RunJsonBench(const BenchConfig& config) {
  datagen::GeneratedDataset dataset =
      config.dataset == "music"
          ? datagen::GenerateMusic(
                datagen::ScaleDims(datagen::kDimsMusic1, config.scale))
          : datagen::GenerateAmazonGoogle(
                datagen::ScaleDims(datagen::kDimsAmazonGoogle, config.scale));
  Table table_a = dataset.table_a;
  Table table_b = dataset.table_b;
  // Shared up-front workload for both engines: types and promising columns
  // come from the bare tables, so legacy and tokenized runs time the exact
  // same profiling/corpus/featurization work.
  table_a.SetSchema(InferAttributeTypes(table_a));
  table_b.SetSchema(table_a.schema());
  Result<PromisingAttributes> attributes =
      SelectPromisingAttributes(table_a, table_b);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();

  const std::vector<PairId> pairs =
      FeaturePairs(table_a.num_rows(), table_b.num_rows(), config.pairs);

  StageTiming plane_stage, profile_stage, corpus_stage, featurize_stage,
      end_to_end_stage;
  Checksums checksums;
  for (size_t rep = 0; rep < config.reps; ++rep) {
    Stopwatch end_to_end;
    RepResult result = RunOnce(table_a, table_b, attributes->columns, pairs,
                               config.threads, config.tokenized);
    end_to_end_stage.Record(rep, end_to_end.ElapsedSeconds());
    if (config.tokenized) plane_stage.Record(rep, result.plane_seconds);
    profile_stage.Record(rep, result.profile_seconds);
    corpus_stage.Record(rep, result.corpus_seconds);
    featurize_stage.Record(rep, result.featurize_seconds);
    if (rep > 0) MC_CHECK(checksums == result.checksums);
    checksums = result.checksums;
  }

  // Equivalence spot-check for the tokenized engine: one legacy repetition
  // must produce the same three checksums (and a single-threaded tokenized
  // run guards the plane's thread-count determinism end to end).
  bool equivalence_checked = false;
  bool identical_to_legacy = false;
  if (config.tokenized) {
    RepResult legacy = RunOnce(table_a, table_b, attributes->columns, pairs,
                               config.threads, false);
    RepResult single = RunOnce(table_a, table_b, attributes->columns, pairs,
                               1, true);
    equivalence_checked = true;
    identical_to_legacy =
        checksums == legacy.checksums && checksums == single.checksums;
  }

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_text_plane");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", config.dataset);
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{table_a.num_rows()});
  json.KV("rows_b", uint64_t{table_b.num_rows()});
  json.KV("columns", uint64_t{table_a.num_columns()});
  json.KV("promising_columns", uint64_t{attributes->columns.size()});
  json.KV("feature_pairs", uint64_t{pairs.size()});
  json.KV("threads", uint64_t{config.threads});
  json.KV("text_plane", config.tokenized ? "tokenized" : "legacy");
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto stage = [&](const char* name, const StageTiming& timing) {
    if (!timing.recorded) return;
    json.BeginObject();
    json.KV("name", name);
    json.KV("best_seconds", timing.best);
    json.KV("mean_seconds", timing.mean(config.reps));
    json.EndObject();
  };
  stage("plane_build", plane_stage);
  stage("profile", profile_stage);
  stage("corpus_build", corpus_stage);
  stage("featurize", featurize_stage);
  stage("end_to_end", end_to_end_stage);
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  auto hex = [&](const char* key, uint32_t crc) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%08x", crc);
    json.KV(key, buffer);
  };
  hex("profile_checksum", checksums.profile);
  hex("corpus_checksum", checksums.corpus);
  hex("feature_checksum", checksums.features);
  json.KV("equivalence_checked", equivalence_checked);
  json.KV("identical_to_legacy", identical_to_legacy);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf("wrote %s (end_to_end best %.3fs, featurize best %.3fs)\n",
              config.path.c_str(), end_to_end_stage.best,
              featurize_stage.best);
  if (equivalence_checked && !identical_to_legacy) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: tokenized checksums differ from the "
                 "legacy string path\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--dataset=")) {
      config.dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--pairs=")) {
      config.pairs = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--text-plane=")) {
      config.tokenized = std::string(v) != "legacy";
    }
  }
  if (config.path.empty()) {
    std::fprintf(stderr,
                 "usage: micro_text --json=PATH [--engine=L] "
                 "[--dataset=amazon_google|music] [--scale=F] [--reps=N] "
                 "[--threads=N] [--pairs=N] [--text-plane=legacy|tokenized]\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
