// Microbenchmark for the session service's plane sharing: N concurrent
// debugging sessions on the same table pair through a SessionManager
// (tokenize once, share the corpus) versus N isolated DebugSession::Create
// calls at the same concurrency (each paying its own build).
//
// `--json=PATH` emits a machine-readable record (benchmark
// "micro_service"); bench/BENCH_service.json archives one run of this
// binary on the default workload. The record carries the sharing wins
// (sessions/sec, speedup, plane-cache hit rate, p99 admission wait) and a
// checksum proving the shared lists are bit-identical to the isolated ones
// — sharing is a cost optimization, never a semantic one.
//
// Knobs: --engine=LABEL, --dataset=amazon_google|fodors_zagats, --scale=F
// (default 0.05), --sessions=N (default 24), --concurrency=N (default 4),
// --reps=N (default 3), --k=N (default 10), --threads=N (per-session
// joint workers, default 2).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "service/session_manager.h"
#include "simd/kernels.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  // Long description attributes make tokenization + corpus build the
  // dominant cost — the regime plane sharing targets.
  std::string dataset = "amazon_google";
  double scale = 0.05;
  size_t sessions = 24;
  size_t concurrency = 4;
  size_t reps = 3;
  size_t k = 10;
  size_t threads = 2;
};

struct StageTiming {
  double best = 0.0;
  double total = 0.0;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
  }
  double mean(size_t reps) const {
    return total / static_cast<double>(reps);
  }
};

uint32_t ListsChecksum(const std::vector<std::vector<ScoredPair>>& lists) {
  uint32_t crc = 0;
  for (const std::vector<ScoredPair>& list : lists) {
    for (const ScoredPair& entry : list) {
      crc = Crc32(&entry.pair, sizeof(entry.pair), crc);
      crc = Crc32(&entry.score, sizeof(entry.score), crc);
    }
  }
  return crc;
}

MatchCatcherOptions SessionOptions(const BenchConfig& config) {
  MatchCatcherOptions options;
  options.joint.k = config.k;
  options.joint.num_threads = config.threads;
  return options;
}

int RunJsonBench(const BenchConfig& config) {
  datagen::GeneratedDataset dataset =
      config.dataset == "fodors_zagats"
          ? datagen::GenerateFodorsZagats(
                datagen::ScaleDims(datagen::kDimsFodorsZagats, config.scale))
          : datagen::GenerateAmazonGoogle(
                datagen::ScaleDims(datagen::kDimsAmazonGoogle, config.scale));

  StageTiming isolated_stage, shared_stage;
  uint32_t isolated_checksum = 0, shared_checksum = 0;
  bool identical = true;
  double admission_p99_millis = 0.0;
  size_t plane_hits = 0, plane_misses = 0, corpus_hits = 0;
  for (size_t rep = 0; rep < config.reps; ++rep) {
    // Both arms run the same steady-state shape: one leader session first
    // (in the shared arm it warms the plane + corpus caches), then the
    // remaining N-1 as a concurrent burst.
    //
    // Isolated: N independent DebugSession::Create calls at the same
    // concurrency the manager would run them — every session tokenizes and
    // builds its own corpus from scratch.
    {
      std::vector<uint32_t> checksums(config.sessions, 0);
      ThreadPool pool(config.concurrency, "mc-iso");
      Stopwatch watch;
      auto run_isolated = [&](size_t s) {
        Result<DebugSession> session = DebugSession::Create(
            dataset.table_a, dataset.table_b, dataset.gold,
            SessionOptions(config));
        MC_CHECK(session.ok()) << session.status().ToString();
        checksums[s] = ListsChecksum(session->TopKLists());
      };
      run_isolated(0);
      for (size_t s = 1; s < config.sessions; ++s) {
        pool.Submit([&, s] { run_isolated(s); });
      }
      Status status = pool.Wait();
      MC_CHECK(status.ok()) << status.ToString();
      isolated_stage.Record(rep, watch.ElapsedSeconds());
      isolated_checksum = checksums[0];
      for (uint32_t checksum : checksums) {
        identical = identical && checksum == isolated_checksum;
      }
    }

    // Shared: the same N sessions through one SessionManager — the first
    // builds the plane + corpus, the rest reuse them.
    {
      ServiceLimits limits;
      limits.max_concurrent_sessions = config.concurrency;
      limits.max_queued_sessions = config.sessions;
      SessionManager manager(limits);
      Status registered = manager.RegisterTablePair(
          "bench", dataset.table_a, dataset.table_b, dataset.gold);
      MC_CHECK(registered.ok()) << registered.ToString();
      SessionRequest request;
      request.pair_key = "bench";
      request.options = SessionOptions(config);

      Stopwatch watch;
      std::vector<uint64_t> ids;
      ids.reserve(config.sessions);
      // Leader session runs alone and publishes the shared plane + corpus;
      // the burst behind it rides the caches.
      Result<uint64_t> leader = manager.Submit(request);
      MC_CHECK(leader.ok()) << leader.status().ToString();
      ids.push_back(*leader);
      Result<SessionOutcome> leader_outcome = manager.Wait(*leader);
      MC_CHECK(leader_outcome.ok() &&
               leader_outcome->state == SessionState::kComplete)
          << (leader_outcome.ok() ? leader_outcome->status.ToString()
                                  : leader_outcome.status().ToString());
      for (size_t s = 1; s < config.sessions; ++s) {
        Result<uint64_t> id = manager.Submit(request);
        MC_CHECK(id.ok()) << id.status().ToString();
        ids.push_back(*id);
      }
      std::vector<double> waits;
      for (uint64_t id : ids) {
        Result<SessionOutcome> outcome = manager.Wait(id);
        MC_CHECK(outcome.ok()) << outcome.status().ToString();
        MC_CHECK(outcome->state == SessionState::kComplete)
            << SessionStateName(outcome->state) << ": "
            << outcome->status.ToString();
        shared_checksum = ListsChecksum(outcome->lists);
        identical = identical && shared_checksum == isolated_checksum;
        waits.push_back(outcome->admission_wait_seconds);
      }
      shared_stage.Record(rep, watch.ElapsedSeconds());

      std::sort(waits.begin(), waits.end());
      const size_t p99_index =
          std::min(waits.size() - 1,
                   static_cast<size_t>(0.99 * static_cast<double>(
                                                  waits.size())));
      admission_p99_millis = waits[p99_index] * 1000.0;
      const ServiceStats stats = manager.stats();
      plane_hits = stats.plane_cache_hits;
      plane_misses = stats.plane_cache_misses;
      corpus_hits = stats.corpus_cache_hits;
      manager.Shutdown();
    }
  }

  const double sessions = static_cast<double>(config.sessions);
  const double shared_speedup = isolated_stage.best / shared_stage.best;
  const double hit_rate =
      plane_hits + plane_misses == 0
          ? 0.0
          : static_cast<double>(plane_hits) /
                static_cast<double>(plane_hits + plane_misses);

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_service");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", config.dataset);
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("sessions", uint64_t{config.sessions});
  json.KV("concurrency", uint64_t{config.concurrency});
  json.KV("k", uint64_t{config.k});
  json.KV("threads", uint64_t{config.threads});
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto stage = [&](const char* name, const StageTiming& timing) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("best_seconds", timing.best);
    json.KV("mean_seconds", timing.mean(config.reps));
    json.KV("sessions_per_sec", sessions / timing.best);
    json.EndObject();
  };
  stage("isolated", isolated_stage);
  stage("shared", shared_stage);
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  json.KV("shared_speedup", shared_speedup);
  json.KV("admission_p99_millis", admission_p99_millis);
  json.KV("plane_cache_hits", uint64_t{plane_hits});
  json.KV("plane_cache_misses", uint64_t{plane_misses});
  json.KV("plane_hit_rate", hit_rate);
  json.KV("corpus_cache_hits", uint64_t{corpus_hits});
  json.KV("identical_to_isolated", identical);
  char checksum_hex[16];
  std::snprintf(checksum_hex, sizeof(checksum_hex), "%08x", shared_checksum);
  json.KV("topk_checksum", checksum_hex);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s (isolated %.3fs, shared %.3fs, speedup %.2fx, plane hit "
      "rate %.0f%%)\n",
      config.path.c_str(), isolated_stage.best, shared_stage.best,
      shared_speedup, hit_rate * 100.0);
  if (!identical) {
    std::fprintf(stderr,
                 "SHARING VIOLATION: shared-session lists differ from "
                 "isolated sessions\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--dataset=")) {
      config.dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--sessions=")) {
      config.sessions = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--concurrency=")) {
      config.concurrency = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.path.empty()) {
    std::fprintf(stderr,
                 "usage: micro_service --json=PATH [--engine=LABEL] "
                 "[--dataset=NAME] [--scale=F] [--sessions=N] "
                 "[--concurrency=N] [--reps=N] [--k=N] [--threads=N]\n");
    return 2;
  }
  if (config.sessions == 0 || config.concurrency == 0 || config.reps == 0) {
    std::fprintf(stderr, "sessions, concurrency, reps must be >= 1\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
