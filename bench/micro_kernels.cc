// Microbenchmark for the SIMD-dispatched similarity kernel plane
// (simd/kernels.h) and the batched verifier re-ranking built on it: times
// the overlap kernels (full / capped / early-abandon), the batched ScoreMany
// entry point, and an end-to-end verifier re-rank at 1 and 4 threads.
//
// `--json=PATH` emits a machine-readable record; bench/BENCH_kernels.json
// archives one record per dispatch level, all produced by this binary:
//
//   before:  --simd-level=scalar
//   after:   --simd-level=sse4 / --simd-level=avx2 (or auto, the default)
//
// Every record carries the kernel/score/verifier output checksums; the
// validator (tools/validate_bench_json.py) asserts they are identical across
// levels — the bit-identity contract of tests/simd_kernels_test.cc. The
// record also stores the *active* level (the request is clamped to what the
// CPU/build supports) and the CPU flags that drove the clamp.
//
// Knobs: --engine=LABEL, --simd-level=auto|scalar|sse4|avx2, --spans=N
// (default 4096), --pairs=N (default 2000000), --verifier-rows=N (default
// 400), --reps=N (default 3).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "learn/features.h"
#include "simd/kernels.h"
#include "ssj/topk_list.h"
#include "table/table.h"
#include "table/tokenized_table.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "verifier/match_verifier.h"
#include "verifier/user_oracle.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  std::string simd_level = "auto";
  size_t spans = 4096;
  size_t pairs = 2000000;
  size_t verifier_rows = 1500;
  size_t reps = 3;
};

struct StageTiming {
  double best = 0.0;
  double total = 0.0;
  bool recorded = false;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
    recorded = true;
  }
  double mean(size_t reps) const {
    return total / static_cast<double>(reps);
  }
};

// Sorted-span corpus the kernel stages run over: token-frequency-shaped
// lengths (mostly short cells, a long tail). Like the production spans the
// kernels see (SortedRanks, SsjCorpus tuples), most are distinct; a 5%
// minority carries duplicate runs (the lazy q-gram cells), exercising the
// vector kernels' duplicate screen at bench time without letting the
// scalar-resume fallback dominate the measurement.
std::vector<std::vector<uint32_t>> MakeSpans(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> spans(count);
  for (auto& span : spans) {
    const size_t bucket = rng.NextBelow(100);
    const size_t length = bucket < 60   ? 8 + rng.NextBelow(24)
                          : bucket < 90 ? 32 + rng.NextBelow(96)
                                        : 128 + rng.NextBelow(384);
    const bool with_duplicates = rng.NextBelow(20) == 0;
    span.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      span.push_back(static_cast<uint32_t>(rng.NextBelow(1 << 14)));
      if (with_duplicates && i + 1 < length && rng.NextBelow(16) == 0) {
        span.push_back(span.back());
        ++i;
      }
    }
    std::sort(span.begin(), span.end());
    if (!with_duplicates) {
      span.erase(std::unique(span.begin(), span.end()), span.end());
    }
  }
  return spans;
}

// The synthetic verifier world of tests/verifier_test.cc, sized up: pairs
// (i, i) are matches, two top-k lists with noise, features read from an
// attached text plane.
struct VerifierWorld {
  Table a, b;
  CandidateSet gold;
  std::vector<std::vector<ScoredPair>> lists;
  std::unique_ptr<PairFeatureExtractor> extractor;

  VerifierWorld()
      : a(Schema({{"name", AttributeType::kString},
                  {"city", AttributeType::kString}})),
        b(a.schema()) {}
};

std::unique_ptr<VerifierWorld> MakeVerifierWorld(size_t rows, uint64_t seed) {
  auto world = std::make_unique<VerifierWorld>();
  Rng rng(seed);
  static const char* const kCities[] = {"atlanta", "boston", "chicago",
                                        "denver"};
  for (size_t i = 0; i < rows; ++i) {
    std::string base = "entity" + std::to_string(i) + " token" +
                       std::to_string(rng.NextBelow(6)) + " word" +
                       std::to_string(i % 7);
    world->a.AddRow({base, kCities[i % 4]});
    world->b.AddRow({base + (rng.NextBool(0.4) ? " extra" : ""),
                     kCities[i % 4]});
    world->gold.Add(static_cast<RowId>(i), static_cast<RowId>(i));
  }
  std::vector<ScoredPair> list1, list2;
  for (size_t i = 0; i < rows; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(rows);
    list1.push_back(
        {MakePairId(static_cast<RowId>(i), static_cast<RowId>(i)),
         0.9 - 0.3 * frac});
    if (i + 1 < rows) {
      list1.push_back(
          {MakePairId(static_cast<RowId>(i), static_cast<RowId>(i + 1)),
           0.85 - 0.4 * frac});
    }
    list2.push_back({MakePairId(static_cast<RowId>(i),
                                static_cast<RowId>((i + 2) % rows)),
                     0.8 - 0.5 * frac});
  }
  auto by_score = [](const ScoredPair& x, const ScoredPair& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.pair < y.pair;
  };
  std::sort(list1.begin(), list1.end(), by_score);
  std::sort(list2.begin(), list2.end(), by_score);
  world->lists = {list1, list2};
  TokenizedTable::BuildAndAttach(world->a, world->b, {});
  world->extractor =
      std::make_unique<PairFeatureExtractor>(&world->a, &world->b);
  return world;
}

uint32_t VerifierChecksum(const VerifierResult& result) {
  uint32_t crc = 0;
  for (const IterationTrace& trace : result.iterations) {
    crc = Crc32(trace.phase.data(), trace.phase.size(), crc);
    crc = Crc32(trace.shown.data(), trace.shown.size() * sizeof(PairId), crc);
  }
  const std::vector<PairId> confirmed =
      result.confirmed_matches.SortedPairs();
  return Crc32(confirmed.data(), confirmed.size() * sizeof(PairId), crc);
}

int RunJsonBench(const BenchConfig& config) {
  // Pin the dispatch level. An unsupported request is clamped (stderr note
  // comes from the dispatcher); the record stores what actually ran.
  if (config.simd_level != "auto") {
    simd::SimdLevel requested = simd::SimdLevel::kScalar;
    if (config.simd_level == "sse4") {
      requested = simd::SimdLevel::kSse4;
    } else if (config.simd_level == "avx2") {
      requested = simd::SimdLevel::kAvx2;
    } else if (config.simd_level != "scalar") {
      std::fprintf(stderr, "unknown --simd-level=%s\n",
                   config.simd_level.c_str());
      return 2;
    }
    if (!simd::SetSimdLevel(requested)) {
      std::fprintf(stderr, "requested level %s unsupported; running at %s\n",
                   simd::SimdLevelName(requested),
                   simd::SimdLevelName(simd::ActiveSimdLevel()));
    }
  }
  const char* active_level = simd::SimdLevelName(simd::ActiveSimdLevel());

  const std::vector<std::vector<uint32_t>> spans =
      MakeSpans(config.spans, 20260805);
  std::vector<simd::RankSpan> views(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    views[i] = {spans[i].data(), static_cast<uint32_t>(spans[i].size())};
  }
  auto pair_at = [&](size_t p) {
    return std::pair<size_t, size_t>{p % views.size(),
                                     (p * 7 + 3) % views.size()};
  };

  StageTiming overlap_stage, capped_stage, at_least_stage, score_stage,
      rerank_1t_stage, rerank_4t_stage;
  uint32_t overlap_crc = 0, capped_crc = 0, at_least_crc = 0, score_crc = 0,
           verifier_crc = 0;
  bool verifier_identical = true;

  std::vector<uint32_t> counts(config.pairs);
  for (size_t rep = 0; rep < config.reps; ++rep) {
    // Stage 1: the full overlap kernel (the >= 1.5x acceptance stage).
    Stopwatch overlap_watch;
    for (size_t p = 0; p < config.pairs; ++p) {
      const auto [i, j] = pair_at(p);
      counts[p] = static_cast<uint32_t>(
          simd::OverlapCount(views[i].data, views[i].length, views[j].data,
                             views[j].length));
    }
    overlap_stage.Record(rep, overlap_watch.ElapsedSeconds());
    const uint32_t crc =
        Crc32(counts.data(), counts.size() * sizeof(uint32_t), 0);
    MC_CHECK(rep == 0 || crc == overlap_crc);
    overlap_crc = crc;

    // Stage 2: the capped kernel with a QJoin-like small limit.
    Stopwatch capped_watch;
    for (size_t p = 0; p < config.pairs; ++p) {
      const auto [i, j] = pair_at(p);
      counts[p] = static_cast<uint32_t>(simd::OverlapCountCapped(
          views[i].data, views[i].length, views[j].data, views[j].length,
          /*limit=*/3));
    }
    capped_stage.Record(rep, capped_watch.ElapsedSeconds());
    capped_crc = Crc32(counts.data(), counts.size() * sizeof(uint32_t), 0);

    // Stage 3: the early-abandon kernel at a mid-range requirement.
    Stopwatch at_least_watch;
    for (size_t p = 0; p < config.pairs; ++p) {
      const auto [i, j] = pair_at(p);
      const size_t required =
          std::min(views[i].size(), views[j].size()) / 2;
      size_t overlap = 0;
      const bool ok =
          simd::OverlapAtLeast(views[i].data, views[i].length, views[j].data,
                               views[j].length, required, &overlap);
      counts[p] = ok ? static_cast<uint32_t>(overlap + 1) : 0;
    }
    at_least_stage.Record(rep, at_least_watch.ElapsedSeconds());
    at_least_crc = Crc32(counts.data(), counts.size() * sizeof(uint32_t), 0);
  }

  // Stage 4: batched scoring — every span probes a sliding window of 64
  // candidates through ScoreMany.
  std::vector<double> scores(64);
  for (size_t rep = 0; rep < config.reps; ++rep) {
    uint32_t crc = 0;
    Stopwatch score_watch;
    for (size_t i = 0; i < views.size(); ++i) {
      const size_t begin = (i * 17) % (views.size() - 64);
      simd::ScoreMany(views[i], views.data() + begin, 64,
                      SetMeasure::kJaccard, scores.data());
      crc = Crc32(scores.data(), scores.size() * sizeof(double), crc);
    }
    score_stage.Record(rep, score_watch.ElapsedSeconds());
    MC_CHECK(rep == 0 || crc == score_crc);
    score_crc = crc;
  }

  // Stage 5: end-to-end verifier re-rank (feature matrix + fused forest
  // batch scoring) at 1 and 4 threads; both runs must be byte-identical.
  // Fixed 20 iterations (bootstrap + active + online) over the same world,
  // so both thread counts re-rank the same unshown pool the same number of
  // times. The world is built once per thread count outside the clock.
  for (size_t rep = 0; rep < config.reps; ++rep) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      auto world = MakeVerifierWorld(config.verifier_rows, 11);
      VerifierOptions options;
      options.pairs_per_iteration = 20;
      options.forest.num_trees = 128;
      options.num_threads = threads;
      MatchVerifier verifier(world->lists, world->extractor.get(), options);
      GoldOracle oracle(&world->gold);
      Stopwatch watch;
      const VerifierResult result = verifier.RunIterations(oracle, 20);
      const double seconds = watch.ElapsedSeconds();
      (threads == 1 ? rerank_1t_stage : rerank_4t_stage)
          .Record(rep, seconds);
      const uint32_t crc = VerifierChecksum(result);
      if (rep == 0 && threads == 1) {
        verifier_crc = crc;
      } else {
        verifier_identical = verifier_identical && crc == verifier_crc;
      }
    }
  }

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_kernels");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  json.KV("simd_level", active_level);
  json.KV("simd_level_requested", config.simd_level);
  json.KV("cpu_flags", simd::SimdCpuFlags());
  // Interpreting rerank_4t vs rerank_1t requires knowing the core budget:
  // on a single-core machine the 4-thread run can only match, never beat,
  // the sequential one.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("spans", uint64_t{config.spans});
  json.KV("kernel_pairs", uint64_t{config.pairs});
  json.KV("verifier_rows", uint64_t{config.verifier_rows});
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto stage = [&](const char* name, const StageTiming& timing) {
    if (!timing.recorded) return;
    json.BeginObject();
    json.KV("name", name);
    json.KV("best_seconds", timing.best);
    json.KV("mean_seconds", timing.mean(config.reps));
    json.EndObject();
  };
  stage("overlap_kernel", overlap_stage);
  stage("overlap_capped", capped_stage);
  stage("overlap_at_least", at_least_stage);
  stage("score_many", score_stage);
  stage("verifier_rerank_1t", rerank_1t_stage);
  stage("verifier_rerank_4t", rerank_4t_stage);
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  auto hex = [&](const char* key, uint32_t crc) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%08x", crc);
    json.KV(key, buffer);
  };
  hex("overlap_checksum", overlap_crc);
  hex("capped_checksum", capped_crc);
  hex("at_least_checksum", at_least_crc);
  hex("score_checksum", score_crc);
  hex("verifier_checksum", verifier_crc);
  json.KV("verifier_identical_across_threads", verifier_identical);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s (level %s, overlap best %.3fs, rerank 1t %.3fs / 4t %.3fs)\n",
      config.path.c_str(), active_level, overlap_stage.best,
      rerank_1t_stage.best, rerank_4t_stage.best);
  if (!verifier_identical) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: verifier output differs across "
                 "thread counts or repetitions\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--simd-level=")) {
      config.simd_level = v;
    } else if (const char* v = value_of("--spans=")) {
      config.spans = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--pairs=")) {
      config.pairs = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--verifier-rows=")) {
      config.verifier_rows = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    }
  }
  if (config.path.empty() || config.spans < 128) {
    std::fprintf(stderr,
                 "usage: micro_kernels --json=PATH [--engine=L] "
                 "[--simd-level=auto|scalar|sse4|avx2] [--spans=N>=128] "
                 "[--pairs=N] [--verifier-rows=N] [--reps=N]\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
