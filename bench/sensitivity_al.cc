// §6.5 sensitivity: the number of hybrid active-learning iterations.
//
// The verifier runs a few hybrid rounds (n/4 controversial + 3n/4 top
// confidence) before switching to pure online learning; the paper found 3
// rounds a good balance between classifier accuracy and match recall. We
// sweep that count and report matches found and iterations to the natural
// stop.

#include <iostream>

#include "bench_common.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void Sweep(const std::string& name, const std::string& blocker_label) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, dataset.table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);

  MatchCatcherOptions options;
  options.joint.k = 1000;
  options.joint.num_threads = EnvThreads();
  options.joint.q = EnvQ();
  Result<DebugSession> session =
      DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
  MC_CHECK(session.ok()) << session.status().ToString();
  GoldOracle oracle(&dataset.gold);

  std::cout << name << "/" << blocker_label << "\n"
            << Cell("AL_iters", 10) << Cell("F", 7) << Cell("I", 5) << "\n";
  for (size_t al : {0u, 1u, 3u, 5u, 7u}) {
    MatchCatcherOptions run_options = options;
    run_options.verifier.active_learning_iterations = al;
    MatchVerifier verifier(session->TopKLists(), &session->extractor(),
                           run_options.verifier);
    VerifierResult result = verifier.Run(oracle);
    std::cout << Cell(al, 10) << Cell(result.confirmed_matches.size(), 7)
              << Cell(result.num_iterations(), 5) << "\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Sensitivity (§6.5): active-learning iterations ===\n\n";
  mc::bench::Sweep("A-G", "HASH");
  mc::bench::Sweep("A-D", "SIM");
  mc::bench::Sweep("M1", "HASH");
  std::cout << "(paper: 3 active-learning iterations balance classifier "
               "quality against match recall)\n";
  return 0;
}
