#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/normalize.h"
#include "text/similarity.h"
#include "text/token_dictionary.h"
#include "text/tokenize.h"

namespace mc {
namespace {

using ::testing::Test;

TEST(NormalizeTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Dave SMITH"), "dave smith");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(NormalizeTest, NormalizeForTokens) {
  EXPECT_EQ(NormalizeForTokens("Dave-Smith, NY!"), "dave smith  ny ");
}

TEST(NormalizeTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(TokenizeTest, WordTokens) {
  std::vector<std::string> tokens = WordTokens("Dave Smith, Altanta 18");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "dave");
  EXPECT_EQ(tokens[1], "smith");
  EXPECT_EQ(tokens[2], "altanta");
  EXPECT_EQ(tokens[3], "18");
}

TEST(TokenizeTest, WordTokensKeepDuplicates) {
  EXPECT_EQ(WordTokens("a b a").size(), 3u);
}

TEST(TokenizeTest, DistinctWordTokensDropDuplicates) {
  std::vector<std::string> tokens = DistinctWordTokens("a B a b c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("!!! --- ???").empty());
}

TEST(TokenizeTest, QGramsBasic) {
  std::vector<std::string> grams = QGrams("ab", 2);
  // "#ab#" -> {"#a", "ab", "b#"}
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#a");
  EXPECT_EQ(grams[1], "ab");
  EXPECT_EQ(grams[2], "b#");
}

TEST(TokenizeTest, QGramsEmptyInput) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("  ,,  ", 3).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(TokenizeTest, QGramsNormalizeCaseAndSpaces) {
  EXPECT_EQ(QGrams("A  B", 2), QGrams("a b", 2));
}

TEST(TokenizeTest, LastAndFirstWord) {
  EXPECT_EQ(LastWordToken("Joe Welson"), "welson");
  EXPECT_EQ(FirstWordToken("Joe Welson"), "joe");
  EXPECT_EQ(LastWordToken(""), "");
  EXPECT_EQ(FirstWordToken("  ...  "), "");
}

TEST(SimilarityTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(WordJaccard("dave smith", "dave smith"), 1.0);
  EXPECT_DOUBLE_EQ(WordJaccard("dave smith", "john brown"), 0.0);
  // {dave, smith} vs {david, smith}: 1 shared / 3 union.
  EXPECT_DOUBLE_EQ(WordJaccard("dave smith", "david smith"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(WordJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(WordJaccard("a", ""), 0.0);
}

TEST(SimilarityTest, JaccardIgnoresDuplicates) {
  EXPECT_DOUBLE_EQ(WordJaccard("a a b", "a b b"), 1.0);
}

TEST(SimilarityTest, CosineAndDiceAndOverlapCoefficient) {
  std::vector<std::string> a{"x", "y"};
  std::vector<std::string> b{"y", "z", "w", "v"};
  // overlap=1, |a|=2, |b|=4.
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 1.0 / std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 0.5);
  EXPECT_EQ(OverlapSize(a, b), 1u);
}

TEST(SimilarityTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("welson", "wilson"), 1u);
  EXPECT_EQ(EditDistance("altanta", "atlanta"), 2u);
}

TEST(SimilarityTest, BoundedEditDistanceAgreesWithinBound) {
  const char* words[] = {"", "a", "ab", "smith", "smyth", "welson",
                         "wilson", "atlanta", "altanta"};
  for (const char* x : words) {
    for (const char* y : words) {
      size_t d = EditDistance(x, y);
      for (size_t bound = 0; bound < 6; ++bound) {
        size_t bd = BoundedEditDistance(x, y, bound);
        if (d <= bound) {
          EXPECT_EQ(bd, d) << x << " vs " << y << " bound " << bound;
        } else {
          EXPECT_GT(bd, bound) << x << " vs " << y << " bound " << bound;
        }
      }
    }
  }
}

TEST(SimilarityTest, NormalizedEditSimilarity) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", ""), 0.0);
  EXPECT_NEAR(NormalizedEditSimilarity("welson", "wilson"), 1.0 - 1.0 / 6.0,
              1e-12);
}

TEST(SimilarityTest, SoundexClassicExamples) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
}

TEST(SimilarityTest, SoundexMatchesSimilarNames) {
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
}

TEST(SimilarityTest, FromCountsMatchesDirect) {
  std::vector<std::string> a{"p", "q", "r"};
  std::vector<std::string> b{"q", "r", "s", "t"};
  size_t overlap = OverlapSize(a, b);
  EXPECT_DOUBLE_EQ(
      SetSimilarityFromCounts(SetMeasure::kJaccard, 3, 4, overlap),
      JaccardSimilarity(a, b));
  EXPECT_DOUBLE_EQ(
      SetSimilarityFromCounts(SetMeasure::kCosine, 3, 4, overlap),
      CosineSimilarity(a, b));
  EXPECT_DOUBLE_EQ(SetSimilarityFromCounts(SetMeasure::kDice, 3, 4, overlap),
                   DiceSimilarity(a, b));
  EXPECT_DOUBLE_EQ(
      SetSimilarityFromCounts(SetMeasure::kOverlapCoefficient, 3, 4, overlap),
      OverlapCoefficient(a, b));
}

class SetMeasureCapTest : public ::testing::TestWithParam<SetMeasure> {};

// Property: the cap is an upper bound on the measure for any partner that
// shares only suffix tokens, and is non-increasing in position.
TEST_P(SetMeasureCapTest, CapBoundsAndMonotonicity) {
  const SetMeasure measure = GetParam();
  for (size_t size_a : {1u, 2u, 3u, 5u, 8u, 20u}) {
    double previous = 2.0;
    for (size_t position = 0; position < size_a; ++position) {
      double cap = SetSimilarityCap(measure, size_a, position);
      EXPECT_LE(cap, previous + 1e-12);
      previous = cap;
      size_t remaining = size_a - position;
      // Any partner of size |y| sharing o <= min(remaining, |y|) tokens must
      // score at most cap.
      for (size_t size_y = 1; size_y <= size_a + 3; ++size_y) {
        size_t max_overlap = std::min(remaining, size_y);
        double score =
            SetSimilarityFromCounts(measure, size_a, size_y, max_overlap);
        EXPECT_LE(score, cap + 1e-12)
            << SetMeasureName(measure) << " |a|=" << size_a
            << " pos=" << position << " |y|=" << size_y;
      }
    }
    EXPECT_DOUBLE_EQ(SetSimilarityCap(measure, size_a, size_a), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SetMeasureCapTest,
                         ::testing::Values(SetMeasure::kJaccard,
                                           SetMeasure::kCosine,
                                           SetMeasure::kDice,
                                           SetMeasure::kOverlapCoefficient),
                         [](const auto& info) {
                           return std::string(SetMeasureName(info.param));
                         });

TEST(SimilarityTest, PaperExampleCap) {
  // Paper §4.1: |w| = 4, extending the prefix to the second token caps new
  // pairs at 3/4 = 0.75.
  EXPECT_DOUBLE_EQ(SetSimilarityCap(SetMeasure::kJaccard, 4, 1), 0.75);
}

TEST(TokenDictionaryTest, InternAndLookup) {
  TokenDictionary dict;
  TokenId a = dict.Intern("smith");
  TokenId b = dict.Intern("dave");
  TokenId a2 = dict.Intern("smith");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TokenOf(a), "smith");
  EXPECT_TRUE(dict.Find("dave").has_value());
  EXPECT_FALSE(dict.Find("zzz").has_value());
}

TEST(TokenDictionaryTest, RanksAscendingByDocumentFrequency) {
  TokenDictionary dict;
  TokenId common = dict.Intern("the");
  TokenId rare = dict.Intern("xylophone");
  TokenId medium = dict.Intern("smith");
  dict.AddDocument({common, medium});
  dict.AddDocument({common, medium});
  dict.AddDocument({common, rare});
  dict.FinalizeRanks();
  EXPECT_LT(dict.RankOf(rare), dict.RankOf(medium));
  EXPECT_LT(dict.RankOf(medium), dict.RankOf(common));
  EXPECT_EQ(dict.DocumentFrequency(common), 3u);
  EXPECT_EQ(dict.DocumentFrequency(rare), 1u);
}

TEST(TokenDictionaryTest, RankTieBrokenByTokenString) {
  TokenDictionary dict;
  TokenId b = dict.Intern("beta");
  TokenId a = dict.Intern("alpha");
  dict.AddDocument({a});
  dict.AddDocument({b});
  dict.FinalizeRanks();
  EXPECT_LT(dict.RankOf(a), dict.RankOf(b));
}

}  // namespace
}  // namespace mc
