// Pins the central semantic equivalence of the SSJ machinery: the score a
// config view produces for a pair equals the plain text-level Jaccard of
// the concatenated attribute strings (paper §3.1: convert each tuple into
// str_gamma(a) concatenating the config's attributes, compare with Jaccard
// over word sets).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/random.h"

namespace mc {
namespace {

std::string ConcatConfig(const Table& table, size_t row,
                         const std::vector<size_t>& columns,
                         ConfigMask config) {
  std::string text;
  for (size_t bit = 0; bit < columns.size(); ++bit) {
    if (!ConfigContains(config, bit)) continue;
    text += std::string(table.Value(row, columns[bit])) + " ";
  }
  return text;
}

Table RandomTable(Rng& rng, size_t rows) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"desc", AttributeType::kString}});
  Table table(schema);
  auto words = [&](size_t max) {
    std::string out;
    size_t n = rng.NextBelow(max + 1);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += "w" + std::to_string(rng.NextZipf(25, 0.9));
    }
    return out;
  };
  for (size_t r = 0; r < rows; ++r) {
    table.AddRow({words(4), words(2), words(7)});
  }
  return table;
}

class CorpusSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusSemanticsTest, ConfigScoreEqualsTextJaccard) {
  Rng rng(GetParam());
  Table a = RandomTable(rng, 25);
  Table b = RandomTable(rng, 25);
  const std::vector<size_t> columns{0, 1, 2};
  SsjCorpus corpus = SsjCorpus::Build(a, b, columns);

  for (ConfigMask config = 1; config < 8; ++config) {
    ConfigView view = corpus.MakeConfigView(config);
    DirectPairScorer scorer(&view, SetMeasure::kJaccard);
    for (RowId i = 0; i < 25; ++i) {
      for (RowId j = 0; j < 25; j += 3) {
        std::string text_a = ConcatConfig(a, i, columns, config);
        std::string text_b = ConcatConfig(b, j, columns, config);
        // The join machinery never scores empty-token tuples; the text
        // convention (both empty -> 1.0) differs there by design.
        if (view.a(i).empty() || view.b(j).empty()) continue;
        double expected = JaccardSimilarity(DistinctWordTokens(text_a),
                                            DistinctWordTokens(text_b));
        EXPECT_NEAR(scorer.Score(i, j), expected, 1e-12)
            << "config " << config << " pair (" << i << "," << j << ")\n"
            << "  a: \"" << text_a << "\"\n  b: \"" << text_b << "\"";
      }
    }
  }
}

TEST_P(CorpusSemanticsTest, ConfigLengthEqualsDistinctTokenCount) {
  Rng rng(GetParam() + 77);
  Table a = RandomTable(rng, 20);
  Table b = RandomTable(rng, 5);
  const std::vector<size_t> columns{0, 1, 2};
  SsjCorpus corpus = SsjCorpus::Build(a, b, columns);
  for (ConfigMask config = 1; config < 8; ++config) {
    ConfigView view = corpus.MakeConfigView(config);
    for (RowId i = 0; i < 20; ++i) {
      std::string text = ConcatConfig(a, i, columns, config);
      EXPECT_EQ(view.a(i).size(), DistinctWordTokens(text).size());
      EXPECT_EQ(SsjCorpus::ConfigLength(corpus.tuple_a(i), config),
                view.a(i).size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSemanticsTest,
                         ::testing::Values(1001, 2002, 3003));

}  // namespace
}  // namespace mc
