// Determinism and cancellation pins for the two-level joint scheduler and
// the block-parallel corpus build: the per-config lists (pairs AND scores)
// must be bit-identical for every thread count, shard count, and scheduler;
// a deadline or injected fault mid-build or mid-schedule must degrade to
// best-so-far results without deadlocking.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "joint/joint_executor.h"
#include "joint/parent_merge.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/run_context.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomThreeAttrTables(Rng& rng, size_t rows) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"desc", AttributeType::kString}});
  Table a(schema), b(schema);
  auto word = [&](const char* prefix, size_t vocab) {
    return std::string(prefix) + std::to_string(rng.NextZipf(vocab, 0.7));
  };
  auto make_row = [&](Table& table) {
    std::string name = word("n", 30) + " " + word("n", 30);
    std::string city = word("c", 10);
    std::string desc;
    size_t len = rng.NextBelow(6);
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) desc += ' ';
      desc += word("d", 40);
    }
    if (rng.NextBool(0.1)) name = "";
    if (rng.NextBool(0.2)) city = "";
    table.AddRow({name, city, desc});
  };
  for (size_t i = 0; i < rows; ++i) make_row(a);
  for (size_t i = 0; i < rows; ++i) make_row(b);
  return {std::move(a), std::move(b)};
}

PromisingAttributes ThreeColumnAttrs() {
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  return attrs;
}

// Exact equality, not EXPECT_NEAR: the determinism contract is bit-identical
// scores, not merely close ones.
void ExpectIdenticalResults(const JointResult& got, const JointResult& ref,
                            const std::string& label) {
  ASSERT_EQ(got.per_config.size(), ref.per_config.size()) << label;
  for (size_t i = 0; i < got.per_config.size(); ++i) {
    const std::vector<ScoredPair>& g = got.per_config[i].topk;
    const std::vector<ScoredPair>& r = ref.per_config[i].topk;
    ASSERT_EQ(g.size(), r.size()) << label << " node " << i;
    for (size_t j = 0; j < g.size(); ++j) {
      EXPECT_EQ(g[j].pair, r[j].pair)
          << label << " node " << i << " rank " << j;
      EXPECT_EQ(g[j].score, r[j].score)
          << label << " node " << i << " rank " << j;
    }
  }
}

// --------------------------------------------------------------------------
// Joint scheduler determinism.
// --------------------------------------------------------------------------

TEST(JointDeterminismTest, BitIdenticalAcrossThreadsShardsAndSchedulers) {
  Rng rng(2024);
  auto [a, b] = RandomThreeAttrTables(rng, 60);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  for (bool reuse : {false, true}) {
    JointOptions base;
    base.k = 25;
    base.q = 1;
    base.reuse_overlaps = reuse;
    base.reuse_topk = reuse;
    base.reuse_min_avg_tokens = 0.0;

    // Reference: the legacy scheduler's sequential BFS (the pre-two-level
    // code path).
    JointOptions ref_options = base;
    ref_options.scheduler = JointScheduler::kConfigPerTask;
    ref_options.num_threads = 1;
    JointResult ref = RunJointTopKJoins(corpus, tree, ref_options);
    ASSERT_FALSE(ref.truncated);

    for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
      for (size_t shards : {size_t{0}, size_t{1}, size_t{3}}) {
        JointOptions options = base;
        options.scheduler = JointScheduler::kTwoLevel;
        options.num_threads = threads;
        options.shards_per_config = shards;
        JointResult got = RunJointTopKJoins(corpus, tree, options);
        ASSERT_FALSE(got.truncated);
        if (shards != 0) {
          EXPECT_EQ(got.per_config[0].shards_used, shards);
        }
        ExpectIdenticalResults(
            got, ref,
            "reuse=" + std::to_string(reuse) + " threads=" +
                std::to_string(threads) + " shards=" + std::to_string(shards));
      }
    }
  }
}

// --------------------------------------------------------------------------
// Corpus build determinism and the zero-copy view path.
// --------------------------------------------------------------------------

TEST(CorpusBuildDeterminismTest, ParallelBuildMatchesSequential) {
  Rng rng(31);
  auto [a, b] = RandomThreeAttrTables(rng, 90);

  CorpusBuildOptions sequential;
  sequential.num_threads = 1;
  sequential.block_rows = 16;  // Many blocks even on a small table.
  CorpusBuildOptions parallel = sequential;
  parallel.num_threads = 4;

  SsjCorpus ref = SsjCorpus::Build(a, b, {0, 1, 2}, sequential);
  SsjCorpus got = SsjCorpus::Build(a, b, {0, 1, 2}, parallel);
  EXPECT_FALSE(ref.truncated());
  EXPECT_FALSE(got.truncated());
  EXPECT_GT(got.build_stats().blocks, 1u);

  ASSERT_EQ(got.rows_a(), ref.rows_a());
  ASSERT_EQ(got.rows_b(), ref.rows_b());
  ASSERT_EQ(got.dictionary().size(), ref.dictionary().size());
  auto expect_same_tuple = [](const TupleTokens& x, const TupleTokens& y,
                              const char* side, size_t row) {
    ASSERT_EQ(x.size(), y.size()) << side << row;
    for (size_t t = 0; t < x.size(); ++t) {
      EXPECT_EQ(x.ranks[t], y.ranks[t]) << side << row << " token " << t;
      EXPECT_EQ(x.masks[t], y.masks[t]) << side << row << " token " << t;
    }
  };
  for (size_t row = 0; row < ref.rows_a(); ++row) {
    expect_same_tuple(got.tuple_a(row), ref.tuple_a(row), "a", row);
  }
  for (size_t row = 0; row < ref.rows_b(); ++row) {
    expect_same_tuple(got.tuple_b(row), ref.tuple_b(row), "b", row);
  }
}

TEST(CorpusBuildDeterminismTest, ZeroCopyViewMatchesMaterialized) {
  Rng rng(32);
  auto [a, b] = RandomThreeAttrTables(rng, 60);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});

  for (ConfigMask config : {0b111u, 0b101u, 0b010u, 0b001u}) {
    ConfigView fast = corpus.MakeConfigView(config, SsjCorpus::ViewMode::kAuto);
    ConfigView slow =
        corpus.MakeConfigView(config, SsjCorpus::ViewMode::kMaterialize);
    EXPECT_EQ(slow.zero_copy_rows(), 0u);
    EXPECT_EQ(fast.zero_copy_rows() + fast.materialized_rows(),
              fast.rows_a() + fast.rows_b());
    if (config == 0b111u) {
      // The root config filters nothing: every row is served zero-copy.
      EXPECT_EQ(fast.materialized_rows(), 0u);
    }

    ASSERT_EQ(fast.rows_a(), slow.rows_a());
    ASSERT_EQ(fast.rows_b(), slow.rows_b());
    EXPECT_EQ(fast.rank_limit(), slow.rank_limit());
    EXPECT_DOUBLE_EQ(fast.average_tokens(), slow.average_tokens());
    auto expect_same_span = [&](TokenSpan x, TokenSpan y, const char* side,
                                size_t row) {
      ASSERT_EQ(x.size(), y.size())
          << "config " << config << " " << side << row;
      for (size_t t = 0; t < x.size(); ++t) {
        EXPECT_EQ(x[t], y[t]) << "config " << config << " " << side << row;
      }
    };
    for (size_t row = 0; row < fast.rows_a(); ++row) {
      expect_same_span(fast.a(row), slow.a(row), "a", row);
    }
    for (size_t row = 0; row < fast.rows_b(); ++row) {
      expect_same_span(fast.b(row), slow.b(row), "b", row);
    }
  }
}

TEST(CorpusBuildDeterminismTest, ViewScratchReturnsToPool) {
  Rng rng(33);
  auto [a, b] = RandomThreeAttrTables(rng, 40);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  // A filtering config needs scratch; destroying its view must park the
  // buffer for the next view instead of freeing it.
  { ConfigView view = corpus.MakeConfigView(0b001); }
  ConfigView reuse = corpus.MakeConfigView(0b010);
  (void)reuse;
  SUCCEED();
}

// --------------------------------------------------------------------------
// Cancellation and fault injection: corpus build.
// --------------------------------------------------------------------------

class CorpusFaultTest : public ::testing::Test {
  void TearDown() override { FaultRegistry::Instance().Reset(); }
};

TEST_F(CorpusFaultTest, CancelledBuildTruncatesAndJointPropagates) {
  Rng rng(41);
  auto [a, b] = RandomThreeAttrTables(rng, 40);
  RunContext context = RunContext::Cancellable();
  context.Cancel();  // Fires "mid-build" at the very first block check.
  CorpusBuildOptions build;
  build.run_context = context;
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2}, build);
  EXPECT_TRUE(corpus.truncated());
  EXPECT_EQ(corpus.build_stats().dropped_blocks, corpus.build_stats().blocks);

  // A joint run over the truncated corpus must finish (no deadlock) and
  // carry the truncation flag even though every config task ran clean.
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());
  JointOptions options;
  options.k = 10;
  options.num_threads = 2;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  EXPECT_TRUE(joint.truncated);
  EXPECT_TRUE(joint.task_error.ok()) << joint.task_error.ToString();
}

TEST_F(CorpusFaultTest, FaultedBlockIsDroppedNotFatal) {
  Rng rng(42);
  auto [a, b] = RandomThreeAttrTables(rng, 64);
  FaultRegistry::Instance().Reset();
  FaultRegistry::Instance().ArmNthHit("corpus/build_block", FaultKind::kThrow,
                                      1);
  CorpusBuildOptions build;
  build.num_threads = 2;
  build.block_rows = 16;
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2}, build);
  EXPECT_TRUE(corpus.truncated());
  EXPECT_EQ(corpus.build_stats().dropped_blocks, 1u);
  EXPECT_GT(corpus.build_stats().blocks, 1u);
  // The surviving blocks tokenized normally: some tuple has tokens.
  bool any_tokens = false;
  for (size_t row = 0; row < corpus.rows_a(); ++row) {
    if (corpus.tuple_a(row).size() > 0) any_tokens = true;
  }
  EXPECT_TRUE(any_tokens);
}

// --------------------------------------------------------------------------
// Fault injection: shard tasks of the two-level scheduler.
// --------------------------------------------------------------------------

class JointShardFaultTest : public ::testing::Test {
  void TearDown() override { FaultRegistry::Instance().Reset(); }
};

TEST_F(JointShardFaultTest, ThrowingShardTaskIsCapturedNotFatal) {
  Rng rng(51);
  auto [a, b] = RandomThreeAttrTables(rng, 40);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  FaultRegistry::Instance().Reset();
  FaultRegistry::Instance().ArmNthHit("joint/shard_task", FaultKind::kThrow,
                                      1);

  JointOptions options;
  options.k = 10;
  options.num_threads = 4;
  options.shards_per_config = 3;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);

  // The first shard task to run belongs to the root (parents-first: only
  // the root's shards are in flight initially), so exactly that config is
  // incomplete; its children still ran, seeded from the partial list.
  EXPECT_EQ(joint.task_error.code(), StatusCode::kInternal);
  EXPECT_NE(joint.task_error.message().find("joint/shard_task"),
            std::string::npos)
      << joint.task_error.ToString();
  EXPECT_TRUE(joint.truncated);
  size_t incomplete = 0;
  for (size_t i = 0; i < joint.per_config.size(); ++i) {
    if (!joint.per_config[i].completed) {
      ++incomplete;
      EXPECT_EQ(i, 0u);  // The root.
    }
  }
  EXPECT_EQ(incomplete, 1u);
}

// --------------------------------------------------------------------------
// ParentPublication / ParentMergeSource.
// --------------------------------------------------------------------------

class CountingScorer : public PairScorer {
 public:
  double Score(RowId row_a, RowId row_b) override {
    (void)row_a;
    (void)row_b;
    ++calls;
    return 0.5;
  }
  size_t calls = 0;
};

TEST(ParentMergeSourceTest, VersionFastPathAndSingleDelivery) {
  Rng rng(61);
  auto [a, b] = RandomThreeAttrTables(rng, 10);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigView view = corpus.MakeConfigView(0b111);

  ParentPublication parent;
  CountingScorer scorer;
  ParentMergeSource source(&parent, &view, &scorer);

  // Parent still running: every poll is the version fast path — no lock,
  // no copy, no re-scoring.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(source.TryFetch().has_value());
  }
  EXPECT_EQ(scorer.calls, 0u);

  std::vector<ScoredPair> list{{MakePairId(0, 0), 1.0},
                               {MakePairId(1, 1), 0.75}};
  parent.Publish(list);
  EXPECT_TRUE(parent.done());
  EXPECT_EQ(parent.version(), 1u);

  auto fetched = source.TryFetch();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->size(), 2u);
  EXPECT_EQ(scorer.calls, 2u);  // Re-adjusted through the child's scorer.

  // At most once: the version has not changed since delivery.
  EXPECT_FALSE(source.TryFetch().has_value());
  EXPECT_EQ(scorer.calls, 2u);
}

TEST(ParentMergeSourceTest, ReadjustDropsRowsEmptyUnderChildConfig) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"alpha beta", ""});       // Row 0: empty under config 0b10.
  a.AddRow({"gamma", "delta"});       // Row 1: survives both configs.
  b.AddRow({"alpha", "delta epsilon"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  ConfigView child = corpus.MakeConfigView(0b10);
  CountingScorer scorer;
  std::vector<ScoredPair> parent_list{{MakePairId(0, 0), 0.9},
                                      {MakePairId(1, 0), 0.4}};
  std::vector<ScoredPair> adjusted =
      ReadjustToConfig(parent_list, child, scorer);
  ASSERT_EQ(adjusted.size(), 1u);
  EXPECT_EQ(adjusted[0].pair, MakePairId(1, 0));
  EXPECT_EQ(scorer.calls, 1u);  // Only the surviving pair was re-scored.
}

}  // namespace
}  // namespace mc
