#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocker.h"
#include "blocking/candidate_set.h"
#include "blocking/executors.h"
#include "blocking/metrics.h"
#include "blocking/pair.h"
#include "blocking/rule_blocker.h"
#include "blocking/standard_blockers.h"
#include "table/table.h"
#include "util/random.h"

namespace mc {
namespace {

// The paper's Figure 1 tables.
Table FigureOneTableA() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"Dave Smith", "Altanta", "18"});        // a1
  table.AddRow({"Daniel Smith", "LA", "18"});           // a2
  table.AddRow({"Joe Welson", "New York", "25"});       // a3
  table.AddRow({"Charles Williams", "Chicago", "45"});  // a4
  table.AddRow({"Charlie William", "Atlanta", "28"});   // a5
  return table;
}

Table FigureOneTableB() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"David Smith", "Atlanta", "18"});      // b1
  table.AddRow({"Joe Wilson", "NY", "25"});            // b2
  table.AddRow({"Daniel W. Smith", "LA", "30"});       // b3
  table.AddRow({"Charles Williams", "Chicago", "45"});  // b4
  return table;
}

TEST(PairIdTest, PackUnpackRoundTrip) {
  PairId pair = MakePairId(123456, 654321);
  EXPECT_EQ(PairRowA(pair), 123456u);
  EXPECT_EQ(PairRowB(pair), 654321u);
  EXPECT_EQ(MakePairId(0, 0), 0u);
  PairId max_pair = MakePairId(0xFFFFFFFFu, 0xFFFFFFFFu);
  EXPECT_EQ(PairRowA(max_pair), 0xFFFFFFFFu);
  EXPECT_EQ(PairRowB(max_pair), 0xFFFFFFFFu);
}

TEST(CandidateSetTest, BasicOperations) {
  CandidateSet set;
  EXPECT_TRUE(set.empty());
  set.Add(1, 2);
  set.Add(1, 2);
  set.Add(3, 4);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(1, 2));
  EXPECT_FALSE(set.Contains(2, 1));

  CandidateSet other;
  other.Add(3, 4);
  other.Add(5, 6);
  EXPECT_EQ(set.IntersectionSize(other), 1u);
  set.UnionWith(other);
  EXPECT_EQ(set.size(), 3u);

  std::vector<PairId> sorted = set.SortedPairs();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(sorted.size(), 3u);
}

TEST(FigureOneTest, CityEquivalenceBlockerMatchesPaper) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  // Q1: a.City = b.City -> C1 = {(a2,b3), (a4,b4), (a5,b1)}.
  auto blocker = HashBlocker::AttributeEquivalence(1);
  CandidateSet c1 = blocker->Run(a, b);
  EXPECT_EQ(c1.size(), 3u);
  EXPECT_TRUE(c1.Contains(1, 2));  // (a2, b3): LA.
  EXPECT_TRUE(c1.Contains(3, 3));  // (a4, b4): Chicago.
  EXPECT_TRUE(c1.Contains(4, 0));  // (a5, b1): Atlanta.
  // True matches (a1,b1) and (a3,b2) are killed off.
  EXPECT_FALSE(c1.Contains(0, 0));
  EXPECT_FALSE(c1.Contains(2, 1));
}

TEST(FigureOneTest, SecondBlockerKeepsA1B1) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  // Q2: a.City = b.City OR lastword(a.Name) = lastword(b.Name).
  auto q2 = std::make_shared<UnionBlocker>(
      std::vector<std::shared_ptr<const Blocker>>{
          HashBlocker::AttributeEquivalence(1),
          std::make_shared<HashBlocker>(
              KeyFunction(KeyFunction::Kind::kLastWord, 0))});
  CandidateSet c2 = q2->Run(a, b);
  EXPECT_TRUE(c2.Contains(0, 0));   // (a1, b1) survives via last name.
  EXPECT_FALSE(c2.Contains(2, 1));  // (a3, b2): Welson vs Wilson killed.
  // Paper C2 = {(a1,b1), (a1,b3), (a2,b1), (a2,b3), (a4,b4), (a5,b1)}.
  EXPECT_EQ(c2.size(), 6u);
  EXPECT_TRUE(c2.Contains(0, 2));
  EXPECT_TRUE(c2.Contains(1, 0));
  EXPECT_TRUE(c2.Contains(1, 2));
  EXPECT_TRUE(c2.Contains(3, 3));
  EXPECT_TRUE(c2.Contains(4, 0));
}

TEST(FigureOneTest, ThirdBlockerKeepsWelsonWilson) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  // Q3: a.City = b.City OR ed(lastword(a.Name), lastword(b.Name)) <= 2.
  auto q3 = std::make_shared<UnionBlocker>(
      std::vector<std::shared_ptr<const Blocker>>{
          HashBlocker::AttributeEquivalence(1),
          std::make_shared<EditDistanceBlocker>(
              KeyFunction(KeyFunction::Kind::kLastWord, 0), 2)});
  CandidateSet c3 = q3->Run(a, b);
  EXPECT_TRUE(c3.Contains(0, 0));  // (a1, b1).
  EXPECT_TRUE(c3.Contains(2, 1));  // (a3, b2): ed(welson, wilson) = 1.
  // William vs Williams: ed = 1, so (a5, b4) also survives.
  EXPECT_TRUE(c3.Contains(4, 3));
}

TEST(KeyFunctionTest, Variants) {
  Table a = FigureOneTableA();
  KeyFunction full(KeyFunction::Kind::kFullValue, 1);
  EXPECT_EQ(full.Apply(a, 0).value(), "altanta");
  KeyFunction last(KeyFunction::Kind::kLastWord, 0);
  EXPECT_EQ(last.Apply(a, 0).value(), "smith");
  KeyFunction first(KeyFunction::Kind::kFirstWord, 0);
  EXPECT_EQ(first.Apply(a, 0).value(), "dave");
  KeyFunction soundex(KeyFunction::Kind::kSoundex, 0);
  EXPECT_EQ(soundex.Apply(a, 0).value(), Soundex("dave"));
  KeyFunction prefix(KeyFunction::Kind::kPrefix, 0, 4);
  EXPECT_EQ(prefix.Apply(a, 0).value(), "dave");
  KeyFunction bucket(KeyFunction::Kind::kNumericBucket, 2, 10);
  EXPECT_EQ(bucket.Apply(a, 0).value(), "1");  // 18 / 10 -> bucket 1.
}

TEST(KeyFunctionTest, MissingValues) {
  Schema schema({{"name", AttributeType::kString}});
  Table table(schema);
  table.AddRow({""});
  table.AddRow({"  ,, "});
  KeyFunction last(KeyFunction::Kind::kLastWord, 0);
  EXPECT_FALSE(last.Apply(table, 0).has_value());
  EXPECT_FALSE(last.Apply(table, 1).has_value());
  KeyFunction full(KeyFunction::Kind::kFullValue, 0);
  EXPECT_FALSE(full.Apply(table, 1).has_value());
}

TEST(KeyFunctionTest, Descriptions) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  EXPECT_EQ(KeyFunction(KeyFunction::Kind::kLastWord, 0).Description(schema),
            "lastword(name)");
  EXPECT_EQ(
      KeyFunction(KeyFunction::Kind::kNumericBucket, 2, 5).Description(schema),
      "bucket5(age)");
}

TEST(PredicateTest, KeyEquality) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  KeyEqualityPredicate predicate(KeyFunction(KeyFunction::Kind::kLastWord, 0));
  EXPECT_TRUE(predicate.Evaluate(a, 0, b, 0));   // smith = smith.
  EXPECT_FALSE(predicate.Evaluate(a, 2, b, 1));  // welson != wilson.
}

TEST(PredicateTest, SetSimilarityAndOverlap) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  SetSimilarityPredicate jaccard(0, TokenizerSpec::Word(),
                                 SetMeasure::kJaccard, 0.3);
  // {dave, smith} vs {david, smith}: 1/3 >= 0.3.
  EXPECT_TRUE(jaccard.Evaluate(a, 0, b, 0));
  // {joe, welson} vs {joe, wilson}: 1/3.
  EXPECT_TRUE(jaccard.Evaluate(a, 2, b, 1));
  SetSimilarityPredicate strict(0, TokenizerSpec::Word(),
                                SetMeasure::kJaccard, 0.9);
  EXPECT_FALSE(strict.Evaluate(a, 0, b, 0));

  OverlapPredicate overlap(0, TokenizerSpec::Word(), 2);
  EXPECT_FALSE(overlap.Evaluate(a, 0, b, 0));  // only "smith" shared.
  EXPECT_TRUE(overlap.Evaluate(a, 3, b, 3));   // charles williams both.
}

TEST(PredicateTest, MissingValuesNeverKeep) {
  Schema schema({{"x", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({""});
  b.AddRow({"anything"});
  SetSimilarityPredicate sim(0, TokenizerSpec::Word(), SetMeasure::kJaccard,
                             0.0);
  EXPECT_FALSE(sim.Evaluate(a, 0, b, 0));
  OverlapPredicate overlap(0, TokenizerSpec::Word(), 0);
  EXPECT_FALSE(overlap.Evaluate(a, 0, b, 0));
  NumericDiffPredicate diff(0, 100.0);
  EXPECT_FALSE(diff.Evaluate(a, 0, b, 0));
}

TEST(PredicateTest, NumericDiff) {
  Schema schema({{"price", AttributeType::kNumeric}});
  Table a(schema), b(schema);
  a.AddRow({"100"});
  b.AddRow({"115"});
  b.AddRow({"125"});
  NumericDiffPredicate within20(0, 20.0);
  EXPECT_TRUE(within20.Evaluate(a, 0, b, 0));
  EXPECT_FALSE(within20.Evaluate(a, 0, b, 1));
}

TEST(PredicateTest, EditDistance) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  EditDistancePredicate predicate(KeyFunction(KeyFunction::Kind::kLastWord, 0),
                                  2);
  EXPECT_TRUE(predicate.Evaluate(a, 2, b, 1));   // welson ~ wilson.
  EXPECT_FALSE(predicate.Evaluate(a, 0, b, 1));  // smith vs wilson.
}

TEST(PredicateTest, Descriptions) {
  Schema schema({{"title", AttributeType::kString}});
  SetSimilarityPredicate sim(0, TokenizerSpec::QGram(3), SetMeasure::kJaccard,
                             0.4);
  EXPECT_EQ(sim.Description(schema), "jaccard_3gram(title) >= 0.4");
  OverlapPredicate overlap(0, TokenizerSpec::Word(), 3);
  EXPECT_EQ(overlap.Description(schema), "overlap_word(title) >= 3");
}

TEST(SortedNeighborhoodTest, WindowPairs) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"alpha"});
  a.AddRow({"delta"});
  b.AddRow({"beta"});
  b.AddRow({"zeta"});
  // Sorted keys: alpha(a0), beta(b0), delta(a1), zeta(b1).
  CandidateSet w2 = EnumerateSortedNeighborhood(
      a, b, KeyFunction(KeyFunction::Kind::kFullValue, 0), 2);
  EXPECT_EQ(w2.size(), 3u);  // (a0,b0), (a1,b0), (a1,b1).
  EXPECT_TRUE(w2.Contains(0, 0));
  EXPECT_TRUE(w2.Contains(1, 0));
  EXPECT_TRUE(w2.Contains(1, 1));
  CandidateSet w3 = EnumerateSortedNeighborhood(
      a, b, KeyFunction(KeyFunction::Kind::kFullValue, 0), 3);
  EXPECT_TRUE(w3.Contains(0, 0));
  EXPECT_EQ(w3.size(), 3u);  // (a0,b1) still out of window (distance 3).
}

TEST(MetricsTest, RecallAndSelectivity) {
  CandidateSet candidates;
  candidates.Add(0, 0);
  candidates.Add(1, 1);
  candidates.Add(2, 2);
  CandidateSet gold;
  gold.Add(0, 0);
  gold.Add(5, 5);
  BlockerMetrics metrics = EvaluateBlocking(candidates, gold, 10, 10);
  EXPECT_EQ(metrics.candidate_count, 3u);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);
  EXPECT_DOUBLE_EQ(metrics.selectivity, 0.03);
  EXPECT_EQ(metrics.killed_matches, 1u);
}

TEST(MetricsTest, EmptyGoldHasFullRecall) {
  CandidateSet candidates;
  CandidateSet gold;
  BlockerMetrics metrics = EvaluateBlocking(candidates, gold, 5, 5);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_EQ(metrics.killed_matches, 0u);
}

// ---------------------------------------------------------------------------
// Property suite: every indexed executor must agree exactly with the naive
// all-pairs evaluation of its predicate, across randomized dirty tables.
// ---------------------------------------------------------------------------

// Random table of person-ish rows with typos and missing values.
Table RandomTable(Rng& rng, size_t rows) {
  static const char* const kFirst[] = {"dave", "david", "daniel", "joe",
                                       "charles", "charlie", "anna", "maria"};
  static const char* const kLast[] = {"smith", "smyth", "welson", "wilson",
                                      "william", "williams", "lee", "chen"};
  static const char* const kCity[] = {"atlanta", "altanta", "new york", "ny",
                                      "la", "chicago", ""};
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kNumeric}});
  Table table(schema);
  for (size_t i = 0; i < rows; ++i) {
    std::string name = std::string(kFirst[rng.NextBelow(8)]) + " " +
                       kLast[rng.NextBelow(8)];
    if (rng.NextBool(0.1)) name = "";  // missing name.
    std::string city = kCity[rng.NextBelow(7)];
    std::string age =
        rng.NextBool(0.15) ? "" : std::to_string(rng.NextBelow(80));
    table.AddRow({name, city, age});
  }
  return table;
}

void ExpectSameSets(const CandidateSet& expected, const CandidateSet& actual,
                    const std::string& label) {
  EXPECT_EQ(expected.size(), actual.size()) << label;
  for (PairId pair : expected) {
    EXPECT_TRUE(actual.Contains(pair))
        << label << " missing (" << PairRowA(pair) << "," << PairRowB(pair)
        << ")";
  }
  for (PairId pair : actual) {
    EXPECT_TRUE(expected.Contains(pair))
        << label << " extra (" << PairRowA(pair) << "," << PairRowB(pair)
        << ")";
  }
}

class ExecutorEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorEquivalenceTest, KeyEqualityMatchesNaive) {
  Rng rng(GetParam());
  Table a = RandomTable(rng, 40);
  Table b = RandomTable(rng, 50);
  for (KeyFunction::Kind kind :
       {KeyFunction::Kind::kFullValue, KeyFunction::Kind::kLastWord,
        KeyFunction::Kind::kSoundex}) {
    KeyFunction key(kind, 0);
    auto predicate = std::make_shared<KeyEqualityPredicate>(key);
    CandidateSet naive = NaiveBlocker(predicate).Run(a, b);
    CandidateSet indexed = EnumerateKeyEquality(a, b, key);
    ExpectSameSets(naive, indexed, "key equality");
  }
}

TEST_P(ExecutorEquivalenceTest, SetSimilarityMatchesNaive) {
  Rng rng(GetParam() + 1000);
  Table a = RandomTable(rng, 40);
  Table b = RandomTable(rng, 50);
  for (SetMeasure measure :
       {SetMeasure::kJaccard, SetMeasure::kCosine, SetMeasure::kDice,
        SetMeasure::kOverlapCoefficient}) {
    for (double threshold : {0.3, 0.5, 0.8}) {
      SetSimilarityPredicate predicate(0, TokenizerSpec::Word(), measure,
                                       threshold);
      auto shared = std::make_shared<SetSimilarityPredicate>(predicate);
      CandidateSet naive = NaiveBlocker(shared).Run(a, b);
      CandidateSet indexed = EnumerateSetSimilarity(a, b, predicate);
      ExpectSameSets(naive, indexed,
                     std::string(SetMeasureName(measure)) + " @ " +
                         std::to_string(threshold));
    }
  }
}

TEST_P(ExecutorEquivalenceTest, QGramSimilarityMatchesNaive) {
  Rng rng(GetParam() + 2000);
  Table a = RandomTable(rng, 30);
  Table b = RandomTable(rng, 30);
  SetSimilarityPredicate predicate(0, TokenizerSpec::QGram(3),
                                   SetMeasure::kJaccard, 0.4);
  auto shared = std::make_shared<SetSimilarityPredicate>(predicate);
  CandidateSet naive = NaiveBlocker(shared).Run(a, b);
  CandidateSet indexed = EnumerateSetSimilarity(a, b, predicate);
  ExpectSameSets(naive, indexed, "3gram jaccard");
}

TEST_P(ExecutorEquivalenceTest, OverlapMatchesNaive) {
  Rng rng(GetParam() + 3000);
  Table a = RandomTable(rng, 40);
  Table b = RandomTable(rng, 50);
  for (size_t min_overlap : {1u, 2u, 3u}) {
    OverlapPredicate predicate(0, TokenizerSpec::Word(), min_overlap);
    auto shared = std::make_shared<OverlapPredicate>(predicate);
    CandidateSet naive = NaiveBlocker(shared).Run(a, b);
    CandidateSet indexed = EnumerateOverlap(a, b, predicate);
    ExpectSameSets(naive, indexed,
                   "overlap >= " + std::to_string(min_overlap));
  }
}

TEST_P(ExecutorEquivalenceTest, EditDistanceMatchesNaive) {
  Rng rng(GetParam() + 4000);
  Table a = RandomTable(rng, 40);
  Table b = RandomTable(rng, 50);
  for (size_t d : {0u, 1u, 2u, 3u}) {
    EditDistancePredicate predicate(
        KeyFunction(KeyFunction::Kind::kLastWord, 0), d);
    auto shared = std::make_shared<EditDistancePredicate>(predicate);
    CandidateSet naive = NaiveBlocker(shared).Run(a, b);
    CandidateSet indexed = EnumerateEditDistanceKeys(a, b, predicate);
    ExpectSameSets(naive, indexed, "edit distance <= " + std::to_string(d));
  }
}

TEST_P(ExecutorEquivalenceTest, RuleBlockerMatchesNaiveConjunction) {
  Rng rng(GetParam() + 5000);
  Table a = RandomTable(rng, 40);
  Table b = RandomTable(rng, 50);
  // Rule 1: jaccard_word(name) >= 0.3 AND absdiff(age) <= 5.
  // Rule 2: a.city = b.city.
  ConjunctiveRule rule1({
      std::make_shared<SetSimilarityPredicate>(0, TokenizerSpec::Word(),
                                               SetMeasure::kJaccard, 0.3),
      std::make_shared<NumericDiffPredicate>(2, 5.0),
  });
  ConjunctiveRule rule2({std::make_shared<KeyEqualityPredicate>(
      KeyFunction(KeyFunction::Kind::kFullValue, 1))});
  RuleBlocker blocker({rule1, rule2});
  CandidateSet indexed = blocker.Run(a, b);

  CandidateSet naive;
  for (size_t ra = 0; ra < a.num_rows(); ++ra) {
    for (size_t rb = 0; rb < b.num_rows(); ++rb) {
      if (rule1.Evaluate(a, ra, b, rb) || rule2.Evaluate(a, ra, b, rb)) {
        naive.Add(static_cast<RowId>(ra), static_cast<RowId>(rb));
      }
    }
  }
  ExpectSameSets(naive, indexed, "rule blocker");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RuleBlockerTest, NaiveFallbackForNonIndexableRule) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  // A rule containing only a numeric-diff predicate has no indexable anchor.
  ConjunctiveRule rule({std::make_shared<NumericDiffPredicate>(2, 0.0)});
  RuleBlocker blocker({rule});
  CandidateSet result = blocker.Run(a, b);
  EXPECT_TRUE(result.Contains(0, 0));   // both age 18.
  EXPECT_TRUE(result.Contains(1, 0));   // 18 = 18.
  EXPECT_TRUE(result.Contains(2, 1));   // 25 = 25.
  EXPECT_TRUE(result.Contains(3, 3));   // 45 = 45.
  EXPECT_FALSE(result.Contains(4, 0));  // a5 age 28 vs 18.
}

TEST(RuleBlockerTest, Description) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  ConjunctiveRule rule({
      std::make_shared<SetSimilarityPredicate>(0, TokenizerSpec::Word(),
                                               SetMeasure::kCosine, 0.5),
      std::make_shared<NumericDiffPredicate>(2, 5.0),
  });
  RuleBlocker blocker({rule});
  EXPECT_EQ(blocker.Description(schema),
            "(cosine_word(name) >= 0.5 AND absdiff(age) <= 5)");
}

TEST(UnionBlockerTest, DescriptionJoinsMembers) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  UnionBlocker blocker({HashBlocker::AttributeEquivalence(1),
                        std::make_shared<HashBlocker>(
                            KeyFunction(KeyFunction::Kind::kLastWord, 0))});
  EXPECT_EQ(blocker.Description(schema),
            "a.city = b.city OR a.lastword(name) = b.lastword(name)");
}

TEST(PhoneticBlockerTest, SoundexGrouping) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"Smith"});
  a.AddRow({"Jones"});
  b.AddRow({"Smyth"});
  b.AddRow({"Brown"});
  PhoneticBlocker blocker(0);
  CandidateSet result = blocker.Run(a, b);
  EXPECT_TRUE(result.Contains(0, 0));
  EXPECT_FALSE(result.Contains(1, 1));
  EXPECT_EQ(result.size(), 1u);
}

}  // namespace
}  // namespace mc
