// Randomized equivalence suite for the threshold-join execution mode
// (RunThresholdJoin, src/ssj/topk_join.h): a join driven by a fixed
// similarity bound — truncated prefixes, no replace-top heap — must be
// bit-identical (pairs AND raw score bits at every rank) to the classic
// top-k engine, whatever the bound: exact k-th (accept path), overshot
// (restart path), or zero (everything survives). Holds across all four set
// measures, a range of k, and shard counts 1 and 4; the executor dispatch
// (JoinExecMode::kThreshold via a cached plan) is pinned the same way at 1
// and 4 threads. Run under ASan by the ci.sh `plan-cache` stage.

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "joint/joint_executor.h"
#include "ssj/corpus.h"
#include "ssj/join_planner.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "text/similarity.h"
#include "util/random.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomTables(Rng& rng, size_t rows) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  auto make_row = [&](Table& table) {
    std::string text;
    size_t n = 3 + rng.NextBelow(9);
    for (size_t t = 0; t < n; ++t) {
      if (t > 0) text += ' ';
      text += "w" + std::to_string(rng.NextZipf(70, 0.9));
    }
    table.AddRow({text});
  };
  for (size_t i = 0; i < rows; ++i) {
    make_row(a);
    make_row(b);
  }
  return {std::move(a), std::move(b)};
}

// Bit-exact list comparison at every rank — the threshold driver's contract
// is identity to the classic engine, not score equivalence.
void ExpectBitIdentical(const TopKList& got, const TopKList& want,
                        const std::string& label) {
  std::vector<ScoredPair> g = got.SortedDescending();
  std::vector<ScoredPair> w = want.SortedDescending();
  ASSERT_EQ(g.size(), w.size()) << label;
  for (size_t r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g[r].pair, w[r].pair) << label << " rank " << r;
    EXPECT_EQ(g[r].score, w[r].score) << label << " rank " << r;
  }
}

struct CaseName {
  template <typename ParamType>
  std::string operator()(
      const ::testing::TestParamInfo<ParamType>& info) const {
    static const char* kMeasureNames[] = {"jaccard", "cosine", "dice",
                                          "overlap"};
    return std::string(kMeasureNames[static_cast<int>(
               std::get<0>(info.param))]) +
           "_k" + std::to_string(std::get<1>(info.param));
  }
};

class ThresholdJoinTest
    : public ::testing::TestWithParam<std::tuple<SetMeasure, size_t>> {
 protected:
  SetMeasure measure() const { return std::get<0>(GetParam()); }
  size_t k() const { return std::get<1>(GetParam()); }

  TopKJoinOptions BaseOptions(size_t q) const {
    TopKJoinOptions options;
    options.k = k();
    options.measure = measure();
    options.q = q;
    return options;
  }
};

// tau at the true k-th score: the fixed-bound pass already sees everything
// the final list holds, so the driver accepts without a restart and the
// list matches the classic run rank for rank — at 1 and 4 shards.
TEST_P(ThresholdJoinTest, MatchesClassicAtTrueKth) {
  for (size_t q : {size_t{1}, size_t{2}}) {
    Rng rng(9100 + static_cast<uint64_t>(measure()) * 100 + k() + q);
    auto [a, b] = RandomTables(rng, 130);
    SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
    ConfigView view = corpus.MakeConfigView(0b1);

    TopKList want = RunTopKJoin(view, BaseOptions(q));
    const double tau = want.KthScore();
    if (!(tau > 0.0)) continue;  // Underfull list: tau=0 case covers it.

    for (size_t shards : {size_t{1}, size_t{4}}) {
      TopKJoinOptions options = BaseOptions(q);
      options.prefilter_threshold = tau;
      options.shards = shards;
      TopKJoinStats stats;
      TopKList got =
          RunThresholdJoin(view, options, nullptr, nullptr, &stats);
      ExpectBitIdentical(got, want,
                         "q=" + std::to_string(q) +
                             " shards=" + std::to_string(shards));
      EXPECT_EQ(stats.prefilter_restarts, 0u)
          << "tau == true k-th must accept without a restart";
    }
  }
}

// tau above the true k-th: the fixed-bound pass cannot fill the list at
// that score, so the driver restarts classically — and the restart seeded
// with the survivors still lands on the exact classic list.
TEST_P(ThresholdJoinTest, MatchesClassicWhenTauOvershoots) {
  Rng rng(9300 + static_cast<uint64_t>(measure()) * 100 + k());
  auto [a, b] = RandomTables(rng, 120);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKList want = RunTopKJoin(view, BaseOptions(1));
  const double kth = want.KthScore();
  const double tau = kth + (1.0 - kth) * 0.5 + 1e-6;  // Strictly above.

  for (size_t shards : {size_t{1}, size_t{4}}) {
    TopKJoinOptions options = BaseOptions(1);
    options.prefilter_threshold = tau;
    options.shards = shards;
    TopKJoinStats stats;
    TopKList got = RunThresholdJoin(view, options, nullptr, nullptr, &stats);
    ExpectBitIdentical(got, want, "shards=" + std::to_string(shards));
    if (want.size() == k() && kth < tau) {
      EXPECT_GE(stats.prefilter_restarts, 1u)
          << "an overshot tau on a full list must go through the restart";
    }
  }
}

// tau = 0 admits every pair into the fixed-bound pass: the driver must
// degenerate to the classic result without a restart.
TEST_P(ThresholdJoinTest, MatchesClassicAtZeroTau) {
  Rng rng(9500 + static_cast<uint64_t>(measure()) * 100 + k());
  auto [a, b] = RandomTables(rng, 100);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKList want = RunTopKJoin(view, BaseOptions(1));
  for (size_t shards : {size_t{1}, size_t{4}}) {
    TopKJoinOptions options = BaseOptions(1);
    options.prefilter_threshold = 0.0;
    options.shards = shards;
    TopKList got = RunThresholdJoin(view, options);
    ExpectBitIdentical(got, want, "shards=" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, ThresholdJoinTest,
    ::testing::Combine(::testing::Values(SetMeasure::kJaccard,
                                         SetMeasure::kCosine,
                                         SetMeasure::kDice,
                                         SetMeasure::kOverlapCoefficient),
                       ::testing::Values(5, 25, 80)),
    CaseName());

// ThresholdPrefixLength is the exact truncation point: every position it
// keeps can still reach tau, the first it drops cannot, and the count is
// monotone in tau (tighter bound, shorter prefix; tau = 0 keeps all).
TEST(ThresholdPrefixLengthTest, ExactTruncationPoint) {
  for (SetMeasure measure :
       {SetMeasure::kJaccard, SetMeasure::kCosine, SetMeasure::kDice,
        SetMeasure::kOverlapCoefficient}) {
    for (size_t len : {size_t{1}, size_t{4}, size_t{17}, size_t{60}}) {
      for (size_t q : {size_t{1}, size_t{3}}) {
        double previous = len + 1;
        for (double tau : {0.0, 0.1, 0.3, 0.5, 0.8, 0.99}) {
          const size_t kept = ThresholdPrefixLength(measure, len, q, tau);
          ASSERT_LE(kept, len);
          EXPECT_EQ(ThresholdPrefixLength(measure, len, q, 0.0), len);
          EXPECT_LE(static_cast<double>(kept), previous)
              << "prefix length must shrink as tau tightens";
          previous = static_cast<double>(kept);
          auto cap_at = [&](size_t pos) {
            const size_t effective = pos >= q ? pos - (q - 1) : 0;
            return SetSimilarityCap(measure, len, effective);
          };
          if (kept > 0) {
            EXPECT_GE(cap_at(kept - 1), tau)
                << "last kept position must still reach tau";
          }
          if (kept < len) {
            EXPECT_LT(cap_at(kept), tau)
                << "first dropped position must be below tau";
          }
        }
      }
    }
  }
}

// Executor dispatch: the same cached plan executed under
// JoinExecMode::kThreshold and under kHybridPrefilter must produce
// bit-identical per-config lists — the mode changes work, never output —
// at 1 and 4 threads.
TEST(ThresholdJoinExecutorTest, CachedPlanModeIsOutputInvariant) {
  Rng rng(9700);
  auto [a, b] = RandomTables(rng, 140);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});

  PromisingAttributes attrs;
  attrs.columns = {0};
  attrs.e_scores = {0.9};
  attrs.avg_len_a = {5};
  attrs.avg_len_b = {5};
  ConfigTree tree = GenerateConfigTree(attrs);

  // A calibrated tau: the classic root join's k-th score, so the threshold
  // pass accepts and the restart path stays cold (the overshoot case is
  // covered by the driver suite above).
  ConfigView root = corpus.MakeConfigView(0b1);
  TopKJoinOptions probe;
  probe.k = 40;
  TopKList classic = RunTopKJoin(root, probe);

  JoinPlan plan;
  plan.q = 1;
  plan.shards = 1;
  plan.hybrid = true;
  plan.prefilter_threshold = classic.KthScore();
  plan.stats_generation = corpus.generation();

  for (size_t threads : {size_t{1}, size_t{4}}) {
    JointOptions options;
    options.k = 40;
    options.q = 0;  // Planner-eligible: the cached plan short-circuits it.
    options.num_threads = threads;
    options.cached_plan = &plan;

    plan.mode = JoinExecMode::kThreshold;
    JointResult threshold_run = RunJointTopKJoins(corpus, tree, options);
    plan.mode = JoinExecMode::kHybridPrefilter;
    JointResult hybrid_run = RunJointTopKJoins(corpus, tree, options);

    ASSERT_TRUE(threshold_run.plan_from_cache);
    ASSERT_EQ(threshold_run.per_config.size(), hybrid_run.per_config.size());
    ASSERT_FALSE(threshold_run.plan_decisions.empty());
    EXPECT_EQ(threshold_run.plan_decisions[0].mode, JoinExecMode::kThreshold);
    for (size_t i = 0; i < threshold_run.per_config.size(); ++i) {
      const std::vector<ScoredPair>& g = threshold_run.per_config[i].topk;
      const std::vector<ScoredPair>& w = hybrid_run.per_config[i].topk;
      const std::string label =
          "threads=" + std::to_string(threads) + " node " + std::to_string(i);
      ASSERT_EQ(g.size(), w.size()) << label;
      for (size_t r = 0; r < g.size(); ++r) {
        EXPECT_EQ(g[r].pair, w[r].pair) << label << " rank " << r;
        EXPECT_EQ(g[r].score, w[r].score) << label << " rank " << r;
      }
    }
  }
}

}  // namespace
}  // namespace mc
