#include <vector>

#include <gtest/gtest.h>

#include "learn/decision_tree.h"
#include "learn/features.h"
#include "learn/random_forest.h"
#include "table/table.h"
#include "util/random.h"

namespace mc {
namespace {

TEST(FeaturesTest, NamesAndDimensions) {
  Schema schema({{"name", AttributeType::kString},
                 {"price", AttributeType::kNumeric}});
  Table a(schema), b(schema);
  a.AddRow({"dave smith", "10"});
  b.AddRow({"david smith", "12"});
  PairFeatureExtractor extractor(&a, &b);
  // 6 string features + 3 numeric features.
  EXPECT_EQ(extractor.num_features(), 9u);
  EXPECT_EQ(extractor.feature_names()[0], "name:jaccard_word");
  EXPECT_EQ(extractor.feature_names()[6], "price:abs_diff");

  FeatureVector features = extractor.Extract(MakePairId(0, 0));
  ASSERT_EQ(features.size(), 9u);
  EXPECT_NEAR(features[0], 1.0 / 3.0, 1e-12);  // word jaccard.
  EXPECT_DOUBLE_EQ(features[5], 1.0);          // both present.
  EXPECT_DOUBLE_EQ(features[6], 2.0);          // abs diff.
  EXPECT_NEAR(features[7], 2.0 / 12.0, 1e-12);  // rel diff.
  EXPECT_DOUBLE_EQ(features[8], 1.0);
}

TEST(FeaturesTest, MissingValuesZeroed) {
  Schema schema({{"name", AttributeType::kString},
                 {"price", AttributeType::kNumeric}});
  Table a(schema), b(schema);
  a.AddRow({"", "10"});
  b.AddRow({"david smith", ""});
  PairFeatureExtractor extractor(&a, &b);
  FeatureVector features = extractor.Extract(MakePairId(0, 0));
  for (double value : features) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(FeaturesTest, IdenticalPairMaximal) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"exact same words"});
  b.AddRow({"exact same words"});
  PairFeatureExtractor extractor(&a, &b);
  FeatureVector features = extractor.Extract(MakePairId(0, 0));
  for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(features[i], 1.0);
}

// Synthetic separable data: positives around (0.8, 0.9), negatives around
// (0.2, 0.1), with a little noise.
void MakeSeparableData(Rng& rng, size_t n,
                       std::vector<FeatureVector>* features,
                       std::vector<int>* labels) {
  for (size_t i = 0; i < n; ++i) {
    bool positive = rng.NextBool(0.5);
    double base = positive ? 0.8 : 0.2;
    features->push_back(
        {base + (rng.NextDouble() - 0.5) * 0.2,
         (positive ? 0.9 : 0.1) + (rng.NextDouble() - 0.5) * 0.2,
         rng.NextDouble()});  // Third feature is pure noise.
    labels->push_back(positive ? 1 : 0);
  }
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  Rng rng(10);
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  MakeSeparableData(rng, 200, &features, &labels);
  std::vector<size_t> all(features.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  TreeParams params;
  params.features_per_split = 3;  // Use every feature.
  DecisionTree tree = DecisionTree::Train(features, labels, all, params, rng);
  size_t correct = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (tree.PredictMatch(features[i]) == (labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, features.size() * 95 / 100);
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  Rng rng(11);
  std::vector<FeatureVector> features{{0.1}, {0.2}, {0.3}};
  std::vector<int> labels{1, 1, 1};
  DecisionTree tree =
      DecisionTree::Train(features, labels, {0, 1, 2}, TreeParams{}, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.PredictProbability({0.9}), 1.0);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(12);
  // Alternating labels force deep splits if allowed.
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  std::vector<size_t> all;
  for (size_t i = 0; i < 64; ++i) {
    features.push_back({static_cast<double>(i)});
    labels.push_back(static_cast<int>(i % 2));
    all.push_back(i);
  }
  TreeParams params;
  params.max_depth = 2;
  params.features_per_split = 1;
  DecisionTree tree = DecisionTree::Train(features, labels, all, params, rng);
  // Depth 2 -> at most 7 nodes.
  EXPECT_LE(tree.num_nodes(), 7u);
}

TEST(RandomForestTest, ConfidenceSeparatesClasses) {
  Rng rng(13);
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  MakeSeparableData(rng, 300, &features, &labels);
  ForestParams params;
  params.num_trees = 16;
  params.seed = 99;
  RandomForest forest = RandomForest::Train(features, labels, params);
  EXPECT_TRUE(forest.trained());
  EXPECT_EQ(forest.num_trees(), 16u);
  EXPECT_GT(forest.Confidence({0.85, 0.9, 0.5}), 0.8);
  EXPECT_LT(forest.Confidence({0.15, 0.1, 0.5}), 0.2);
  // A point straddling the boundary should be more controversial than a
  // clear positive.
  EXPECT_LT(forest.Controversy({0.5, 0.5, 0.5}),
            forest.Controversy({0.9, 0.95, 0.5}) + 1e-9);
}

TEST(RandomForestTest, Deterministic) {
  Rng rng(14);
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  MakeSeparableData(rng, 100, &features, &labels);
  ForestParams params;
  params.num_trees = 8;
  params.seed = 7;
  RandomForest f1 = RandomForest::Train(features, labels, params);
  RandomForest f2 = RandomForest::Train(features, labels, params);
  for (const FeatureVector& sample : features) {
    EXPECT_DOUBLE_EQ(f1.Confidence(sample), f2.Confidence(sample));
  }
}

TEST(RandomForestTest, SingleClassTraining) {
  std::vector<FeatureVector> features{{0.1}, {0.2}};
  std::vector<int> labels{1, 1};
  ForestParams params;
  params.num_trees = 4;
  RandomForest forest = RandomForest::Train(features, labels, params);
  EXPECT_DOUBLE_EQ(forest.Confidence({0.15}), 1.0);
}

}  // namespace
}  // namespace mc
