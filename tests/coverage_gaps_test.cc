// Targeted tests for paths the main suites leave thin: non-Jaccard measures
// through the joint executor, boolean attribute selection, dataset problem
// tags, and top-k list merging at capacity.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "util/random.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomTwoAttrTables(Rng& rng, size_t rows) {
  Schema schema({{"name", AttributeType::kString},
                 {"tags", AttributeType::kString}});
  Table a(schema), b(schema);
  auto words = [&](size_t max, const char* prefix) {
    std::string out;
    size_t n = 1 + rng.NextBelow(max);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += prefix + std::to_string(rng.NextZipf(20, 0.8));
    }
    return out;
  };
  for (size_t i = 0; i < rows; ++i) {
    a.AddRow({words(4, "n"), words(3, "t")});
    b.AddRow({words(4, "n"), words(3, "t")});
  }
  return {std::move(a), std::move(b)};
}

class JointMeasureTest : public ::testing::TestWithParam<SetMeasure> {};

// Theorem 4.2 covers Jaccard, cosine, overlap, and Dice; the main joint
// suite exercises Jaccard — this pins the other measures end to end.
TEST_P(JointMeasureTest, JointEqualsBruteForcePerConfig) {
  const SetMeasure measure = GetParam();
  Rng rng(777);
  auto [a, b] = RandomTwoAttrTables(rng, 40);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  PromisingAttributes attrs;
  attrs.columns = {0, 1};
  attrs.e_scores = {0.9, 0.5};
  attrs.avg_len_a = {2, 2};
  attrs.avg_len_b = {2, 2};
  ConfigTree tree = GenerateConfigTree(attrs);

  JointOptions options;
  options.k = 15;
  options.measure = measure;
  options.num_threads = 2;
  options.reuse_min_avg_tokens = 0.0;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  ASSERT_EQ(joint.per_config.size(), tree.size());
  for (size_t i = 0; i < tree.size(); ++i) {
    ConfigView view = corpus.MakeConfigView(tree.nodes[i].mask);
    std::vector<ScoredPair> expected =
        BruteForceTopK(view, options.k, measure).SortedDescending();
    const std::vector<ScoredPair>& got = joint.per_config[i].topk;
    ASSERT_EQ(got.size(), expected.size())
        << SetMeasureName(measure) << " node " << i;
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_NEAR(got[r].score, expected[r].score, 1e-12)
          << SetMeasureName(measure) << " node " << i << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Measures, JointMeasureTest,
                         ::testing::Values(SetMeasure::kCosine,
                                           SetMeasure::kDice,
                                           SetMeasure::kOverlapCoefficient),
                         [](const auto& info) {
                           return std::string(SetMeasureName(info.param));
                         });

TEST(SelectPromisingTest, BooleanAgreementKept) {
  Schema schema({{"name", AttributeType::kString},
                 {"active", AttributeType::kBoolean}});
  Table a(schema), b(schema);
  for (int i = 0; i < 10; ++i) {
    a.AddRow({"name" + std::to_string(i), i % 2 == 0 ? "yes" : "no"});
    b.AddRow({"label" + std::to_string(i), i % 2 == 0 ? "no" : "yes"});
  }
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  ASSERT_TRUE(result.ok());
  // Boolean with identical value sets ({yes, no}) survives.
  EXPECT_EQ(result->columns.size(), 2u);
}

TEST(SelectPromisingTest, BooleanDisagreementDropped) {
  Schema schema({{"name", AttributeType::kString},
                 {"active", AttributeType::kBoolean}});
  Table a(schema), b(schema);
  for (int i = 0; i < 10; ++i) {
    a.AddRow({"name" + std::to_string(i), i % 2 == 0 ? "yes" : "no"});
    b.AddRow({"label" + std::to_string(i), i % 2 == 0 ? "1" : "0"});
  }
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 1u);
  EXPECT_EQ(result->columns[0], 0u);
}

TEST(DatasetTagsTest, SignatureProblemsPresentPerDataset) {
  // Each dataset must inject its headline Table 4 problem.
  auto has_tag = [](const datagen::GeneratedDataset& dataset,
                    const std::string& tag) {
    for (const auto& [name, count] : dataset.ProblemHistogram()) {
      if (name == tag && count > 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_tag(datagen::GenerateAmazonGoogle(
                          datagen::ScaleDims(datagen::kDimsAmazonGoogle, 0.3)),
                      "manufacturer sprinkled in title"));
  EXPECT_TRUE(has_tag(datagen::GenerateWalmartAmazon(
                          datagen::ScaleDims(datagen::kDimsWalmartAmazon,
                                             0.1)),
                      "missing brand"));
  EXPECT_TRUE(has_tag(datagen::GenerateAcmDblp(
                          datagen::ScaleDims(datagen::kDimsAcmDblp, 0.2)),
                      "subtitle in title"));
  EXPECT_TRUE(has_tag(datagen::GenerateFodorsZagats(), "city sprinkled in "
                                                       "name"));
  EXPECT_TRUE(has_tag(datagen::GenerateMusic(
                          datagen::ScaleDims(datagen::kDimsMusic1, 0.05)),
                      "input not lower-cased"));
  EXPECT_TRUE(has_tag(datagen::GeneratePapersLarge(
                          datagen::ScaleDims(datagen::kDimsPapers, 0.002)),
                      "venue spelled out"));
}

TEST(TopKListTest, MergeFromRespectsCapacity) {
  TopKList list(3);
  list.Add(MakePairId(0, 0), 0.5);
  list.Add(MakePairId(0, 1), 0.6);
  std::vector<ScoredPair> incoming{
      {MakePairId(1, 0), 0.9}, {MakePairId(1, 1), 0.8},
      {MakePairId(1, 2), 0.7}, {MakePairId(1, 3), 0.1}};
  list.MergeFrom(incoming);
  EXPECT_EQ(list.size(), 3u);
  std::vector<ScoredPair> sorted = list.SortedDescending();
  EXPECT_DOUBLE_EQ(sorted[0].score, 0.9);
  EXPECT_DOUBLE_EQ(sorted[1].score, 0.8);
  EXPECT_DOUBLE_EQ(sorted[2].score, 0.7);
}

}  // namespace
}  // namespace mc
