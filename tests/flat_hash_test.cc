#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "util/flat_hash.h"
#include "util/random.h"

namespace mc {
namespace {

TEST(PairFlatMapTest, InsertAndFind) {
  PairFlatMap<uint32_t> map;
  bool inserted = false;
  uint32_t* value = map.FindOrInsert(42, 7, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, 7u);
  ++*value;
  uint32_t* again = map.FindOrInsert(42, 99, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*again, 8u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(42), 8u);
  EXPECT_EQ(map.Find(43), nullptr);
}

TEST(PairFlatMapTest, GrowthPreservesEntries) {
  PairFlatMap<uint32_t> map(64);
  Rng rng(5);
  std::unordered_map<uint64_t, uint32_t> reference;
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.NextBelow(20000);
    bool inserted = false;
    uint32_t* value = map.FindOrInsert(key, 0, &inserted);
    ++*value;
    ++reference[key];
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    ASSERT_NE(map.Find(key), nullptr) << key;
    EXPECT_EQ(*map.Find(key), count) << key;
  }
}

TEST(PairFlatMapTest, ReservePreservesEntries) {
  PairFlatMap<int> map(64);
  bool inserted = false;
  for (uint64_t key = 0; key < 10; ++key) {
    *map.FindOrInsert(key, static_cast<int>(key * 3), &inserted) =
        static_cast<int>(key * 3);
  }
  map.Reserve(1 << 14);
  EXPECT_EQ(map.size(), 10u);
  for (uint64_t key = 0; key < 10; ++key) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), static_cast<int>(key * 3));
  }
}

TEST(PairFlatMapTest, ZeroKeyWorks) {
  // Key 0 (pair (0,0)) must be storable — only the all-ones key is
  // reserved.
  PairFlatMap<uint32_t> map;
  bool inserted = false;
  map.FindOrInsert(0, 5, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*map.Find(0), 5u);
}

TEST(PairFlatMapTest, CollidingKeysAllStored) {
  // Keys chosen to collide in a tiny table exercise linear probing.
  PairFlatMap<uint32_t> map(64);
  bool inserted = false;
  for (uint64_t i = 0; i < 40; ++i) {
    map.FindOrInsert(i << 32, static_cast<uint32_t>(i), &inserted);
  }
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_NE(map.Find(i << 32), nullptr);
    EXPECT_EQ(*map.Find(i << 32), static_cast<uint32_t>(i));
  }
}

}  // namespace
}  // namespace mc
