// Randomized planner-vs-direct equivalence suite for the cost-based join
// planner (src/ssj/join_planner.h). The planner only chooses *how* a join
// runs — q, shard count, hybrid prefilter threshold — so for every choice
// it can make, executing the chosen plan must be bit-identical (pairs and
// raw score bits) to executing the same plan directly without the planner's
// involvement, across seeded corpora, all four set measures, and a range of
// k values. Plan decisions themselves must be deterministic for a fixed
// MC_PLANNER_SEED / PlannerOptions::seed. Also pins satellite regressions:
// corpus planner statistics are invalidated by SsjCorpus::ApplyDelta (the
// generation bump), and the hybrid prefilter stays bit-identical through a
// forced restart. Run under ASan by the ci.sh `planner` stage.

#include <cstdlib>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "ssj/corpus.h"
#include "ssj/join_planner.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "table/table_delta.h"
#include "util/random.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomTables(Rng& rng, size_t rows) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  auto make_row = [&](Table& table) {
    std::string text;
    size_t n = 3 + rng.NextBelow(8);
    for (size_t t = 0; t < n; ++t) {
      if (t > 0) text += ' ';
      text += "w" + std::to_string(rng.NextZipf(60, 0.9));
    }
    table.AddRow({text});
  };
  for (size_t i = 0; i < rows; ++i) {
    make_row(a);
    make_row(b);
  }
  return {std::move(a), std::move(b)};
}

// Bit-exact list comparison: pair identity AND raw score bits must agree at
// every rank. This is strictly stronger than the boundary-tie-tolerant
// check of ssj_equivalence_test — the planner contract is bit-identity to
// running its chosen plan directly, not merely score equivalence.
void ExpectBitIdentical(const TopKList& got, const TopKList& want,
                        const std::string& label) {
  std::vector<ScoredPair> g = got.SortedDescending();
  std::vector<ScoredPair> w = want.SortedDescending();
  ASSERT_EQ(g.size(), w.size()) << label;
  for (size_t r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g[r].pair, w[r].pair) << label << " rank " << r;
    EXPECT_EQ(g[r].score, w[r].score) << label << " rank " << r;
  }
}

struct CaseName {
  template <typename ParamType>
  std::string operator()(
      const ::testing::TestParamInfo<ParamType>& info) const {
    static const char* kMeasureNames[] = {"jaccard", "cosine", "dice",
                                          "overlap"};
    return std::string(kMeasureNames[static_cast<int>(
               std::get<0>(info.param))]) +
           "_k" + std::to_string(std::get<1>(info.param));
  }
};

class PlannerEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SetMeasure, size_t>> {
 protected:
  SetMeasure measure() const { return std::get<0>(GetParam()); }
  size_t k() const { return std::get<1>(GetParam()); }
};

// Executing the planner's chosen plan (q, shards, hybrid threshold) must be
// bit-identical to executing the same (q, shards) classically — the
// planner's extra machinery (prefilter) changes work, never output.
TEST_P(PlannerEquivalenceTest, PlannedExecutionMatchesDirectRun) {
  Rng rng(7000 + static_cast<uint64_t>(measure()) * 100 + k());
  auto [a, b] = RandomTables(rng, 140);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  PlannerOptions planner_options;
  planner_options.k = k();
  planner_options.measure = measure();
  planner_options.seed = 42;
  JoinPlan plan = PlanTopKJoin(corpus, view, planner_options);
  ASSERT_FALSE(plan.truncated);
  ASSERT_GE(plan.q, 1u);
  ASSERT_LE(plan.q, 4u);

  TopKJoinOptions direct;
  direct.k = k();
  direct.measure = measure();
  direct.q = plan.q;
  direct.shards = plan.shards;
  TopKList want = RunTopKJoin(view, direct);

  TopKJoinOptions planned = direct;
  if (plan.hybrid) planned.prefilter_threshold = plan.prefilter_threshold;
  TopKJoinStats stats;
  TopKList got = RunTopKJoin(view, planned, nullptr, nullptr, nullptr,
                             &stats);
  ExpectBitIdentical(got, want, "planned vs direct");
  // And against the single-shard classic run, which the sharded merge is
  // already pinned to elsewhere — closes the loop on plan.shards.
  TopKJoinOptions sequential = direct;
  sequential.shards = 1;
  ExpectBitIdentical(got, RunTopKJoin(view, sequential),
                     "planned vs sequential");
}

// The hybrid prefilter is bit-identical in BOTH of its control paths: the
// done case (tau at or below the true k-th score) and the restart case (tau
// overshoots; phase-1 list falls short and the pass re-runs unbounded,
// seeded with the survivors).
TEST_P(PlannerEquivalenceTest, HybridPrefilterBitIdenticalBothPaths) {
  Rng rng(8000 + static_cast<uint64_t>(measure()) * 100 + k());
  auto [a, b] = RandomTables(rng, 120);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions classic;
  classic.k = k();
  classic.measure = measure();
  classic.q = 2;
  TopKList want = RunTopKJoin(view, classic);
  ASSERT_TRUE(want.full()) << "workload too small for k";
  const double true_kth = want.KthScore();

  // Done case: tau == the true k-th score is the tightest valid threshold.
  {
    TopKJoinOptions hybrid = classic;
    hybrid.prefilter_threshold = true_kth;
    TopKJoinStats stats;
    TopKList got = RunTopKJoin(view, hybrid, nullptr, nullptr, nullptr,
                               &stats);
    EXPECT_EQ(stats.prefilter_restarts, 0u);
    ExpectBitIdentical(got, want, "done case");
  }
  // Restart case: an impossible tau (above every score) guarantees the
  // phase-1 list cannot certify, forcing the unbounded re-run.
  {
    TopKJoinOptions hybrid = classic;
    hybrid.prefilter_threshold = 2.0;
    TopKJoinStats stats;
    TopKList got = RunTopKJoin(view, hybrid, nullptr, nullptr, nullptr,
                               &stats);
    EXPECT_GE(stats.prefilter_restarts, 1u);
    ExpectBitIdentical(got, want, "restart case");
  }
  // Degenerate tau = 0 passes every pair yet still tightens the initial
  // bound (no negative sentinel); output unchanged.
  {
    TopKJoinOptions hybrid = classic;
    hybrid.prefilter_threshold = 0.0;
    ExpectBitIdentical(RunTopKJoin(view, hybrid), want, "tau zero");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasuresKValues, PlannerEquivalenceTest,
    ::testing::Combine(::testing::Values(SetMeasure::kJaccard,
                                         SetMeasure::kCosine,
                                         SetMeasure::kDice,
                                         SetMeasure::kOverlapCoefficient),
                       ::testing::Values(size_t{10}, size_t{40})),
    CaseName());

// Plans are a pure function of (corpus generation, view, options): the same
// seed must reproduce every decision and every piece of evidence.
TEST(PlannerDeterminismTest, SameSeedSamePlan) {
  Rng rng(9100);
  auto [a, b] = RandomTables(rng, 130);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  PlannerOptions options;
  options.k = 25;
  options.seed = 1234;
  const JoinPlan first = PlanTopKJoin(corpus, view, options);
  const JoinPlan second = PlanTopKJoin(corpus, view, options);
  EXPECT_EQ(first.q, second.q);
  EXPECT_EQ(first.shards, second.shards);
  EXPECT_EQ(first.hybrid, second.hybrid);
  EXPECT_EQ(first.prefilter_threshold, second.prefilter_threshold);
  EXPECT_EQ(first.sample_rate, second.sample_rate);
  EXPECT_EQ(first.sample_rows, second.sample_rows);
  EXPECT_EQ(first.sampled_kth, second.sampled_kth);
  EXPECT_EQ(first.half_sample_kth, second.half_sample_kth);
  EXPECT_EQ(first.seed, second.seed);
  EXPECT_EQ(first.est_events, second.est_events);
  EXPECT_EQ(first.est_scored, second.est_scored);
  ASSERT_EQ(first.cost_per_q.size(), second.cost_per_q.size());
  for (size_t i = 0; i < first.cost_per_q.size(); ++i) {
    EXPECT_EQ(first.cost_per_q[i], second.cost_per_q[i]) << "q " << i + 1;
  }
}

TEST(PlannerDeterminismTest, SeedResolvesFromEnvironment) {
  Rng rng(9200);
  auto [a, b] = RandomTables(rng, 100);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  PlannerOptions options;
  options.k = 20;
  options.seed = 0;  // Defer to the environment.
  ASSERT_EQ(setenv("MC_PLANNER_SEED", "98765", /*overwrite=*/1), 0);
  EXPECT_EQ(PlannerSeedFromEnv(), 98765u);
  const JoinPlan env_plan = PlanTopKJoin(corpus, view, options);
  EXPECT_EQ(env_plan.seed, 98765u);
  ASSERT_EQ(unsetenv("MC_PLANNER_SEED"), 0);
  const JoinPlan default_plan = PlanTopKJoin(corpus, view, options);
  EXPECT_EQ(default_plan.seed, PlannerSeedFromEnv());
  EXPECT_NE(default_plan.seed, 0u);
  // An explicit options seed beats the environment.
  ASSERT_EQ(setenv("MC_PLANNER_SEED", "11111", /*overwrite=*/1), 0);
  options.seed = 5;
  EXPECT_EQ(PlanTopKJoin(corpus, view, options).seed, 5u);
  ASSERT_EQ(unsetenv("MC_PLANNER_SEED"), 0);
}

// Satellite regression: planner statistics are cached per corpus
// *generation* — ApplyDelta yields a corpus whose stats recompute over the
// patched arenas and match a from-scratch rebuild field for field.
TEST(PlannerStatsDeltaTest, StatsInvalidatedAndRecomputedAfterApplyDelta) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.12), 47);
  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  ASSERT_TRUE(attributes.ok()) << attributes.status().ToString();
  const std::vector<size_t> columns = attributes->columns;

  Table table_a = dataset.table_a;
  Table table_b = dataset.table_b;
  SsjCorpus corpus = SsjCorpus::Build(table_a, table_b, columns);
  ASSERT_EQ(corpus.generation(), 1u);
  // Populate the cache on the base generation, so a stale-serving bug
  // (returning generation-1 stats from the patched corpus) would be caught.
  const CorpusPlannerStats base_stats = corpus.PlannerStats();
  EXPECT_EQ(base_stats.generation, 1u);

  // One mutate + one append against table A.
  TableDelta delta;
  delta.side = 0;
  TableDelta::RowEdit edit;
  edit.row = 0;
  for (size_t c = 0; c < table_a.num_columns(); ++c) {
    edit.values.push_back(std::string(table_a.Value(0, c)));
  }
  edit.values[0] += " planner delta regression tokens";
  delta.mutated.push_back(std::move(edit));
  std::vector<std::string> appended;
  for (size_t c = 0; c < table_a.num_columns(); ++c) {
    appended.push_back(std::string(table_a.Value(1, c)));
  }
  appended[0] += " appended planner row";
  delta.appended.push_back(std::move(appended));

  const size_t base_rows = table_a.num_rows();
  ASSERT_TRUE(ApplyDeltaToTable(table_a, delta).ok());
  Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::optional<SsjCorpus> patched =
      SsjCorpus::ApplyDelta(corpus, table_a, table_b, columns, *rows);
  ASSERT_TRUE(patched.has_value());
  EXPECT_EQ(patched->generation(), 2u);

  const CorpusPlannerStats patched_stats = patched->PlannerStats();
  EXPECT_EQ(patched_stats.generation, 2u);
  const SsjCorpus rebuilt = SsjCorpus::Build(table_a, table_b, columns);
  const CorpusPlannerStats rebuilt_stats = rebuilt.PlannerStats();
  // Patching may keep dead dictionary entries a rebuild would not mint, so
  // compare live-token counts rather than raw dictionary sizes.
  EXPECT_EQ(patched_stats.dictionary_tokens - patched_stats.dead_tokens,
            rebuilt_stats.dictionary_tokens - rebuilt_stats.dead_tokens);
  EXPECT_DOUBLE_EQ(patched_stats.mean_tokens_a, rebuilt_stats.mean_tokens_a);
  EXPECT_DOUBLE_EQ(patched_stats.mean_tokens_b, rebuilt_stats.mean_tokens_b);
  EXPECT_EQ(patched_stats.max_tokens_a, rebuilt_stats.max_tokens_a);
  EXPECT_EQ(patched_stats.max_tokens_b, rebuilt_stats.max_tokens_b);
  EXPECT_DOUBLE_EQ(patched_stats.tail_mass, rebuilt_stats.tail_mass);
  for (size_t q = 0; q < 4; ++q) {
    EXPECT_DOUBLE_EQ(patched_stats.q_coverage_a[q],
                     rebuilt_stats.q_coverage_a[q])
        << "q " << q + 1;
    EXPECT_DOUBLE_EQ(patched_stats.required_overlap_frac[q],
                     rebuilt_stats.required_overlap_frac[q])
        << "measure " << q;
  }
  // The appended tokens changed table A's length profile, so the patched
  // stats must differ from the (cached, stale) base stats.
  EXPECT_NE(patched_stats.mean_tokens_a, base_stats.mean_tokens_a);
}

// Joint executor: a q = 0 run under the planner must produce per-config
// lists bit-identical to a run with the planner's chosen q fixed up front,
// and must report a full set of plan decisions.
TEST(JointPlannerTest, PlannerRunMatchesExplicitQRun) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.12), 51);
  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  ASSERT_TRUE(attributes.ok()) << attributes.status().ToString();
  const ConfigTree tree = GenerateConfigTree(*attributes, config_options);
  SsjCorpus corpus =
      SsjCorpus::Build(dataset.table_a, dataset.table_b, attributes->columns);

  JointOptions planned;
  planned.k = 25;
  planned.q = 0;
  planned.q_selection = QSelection::kPlanner;
  planned.planner_seed = 77;
  planned.num_threads = 2;
  const JointResult with_planner = RunJointTopKJoins(corpus, tree, planned);
  ASSERT_TRUE(with_planner.task_error.ok())
      << with_planner.task_error.ToString();
  ASSERT_TRUE(with_planner.planner_used);
  EXPECT_EQ(with_planner.q_used, with_planner.plan.q);
  EXPECT_EQ(with_planner.plan_decisions.size(),
            with_planner.per_config.size());
  for (size_t i = 0; i < with_planner.plan_decisions.size(); ++i) {
    EXPECT_EQ(with_planner.plan_decisions[i].config,
              with_planner.per_config[i].config);
    EXPECT_EQ(with_planner.plan_decisions[i].q, with_planner.plan.q);
    EXPECT_EQ(with_planner.plan_decisions[i].shards,
              with_planner.per_config[i].shards_used);
    EXPECT_EQ(with_planner.plan_decisions[i].seeded_from_parent,
              with_planner.per_config[i].seeded_from_parent);
  }

  JointOptions fixed = planned;
  fixed.q = with_planner.plan.q;
  const JointResult direct = RunJointTopKJoins(corpus, tree, fixed);
  ASSERT_TRUE(direct.task_error.ok()) << direct.task_error.ToString();
  EXPECT_FALSE(direct.planner_used);
  ASSERT_EQ(with_planner.per_config.size(), direct.per_config.size());
  for (size_t i = 0; i < direct.per_config.size(); ++i) {
    const auto& got = with_planner.per_config[i].topk;
    const auto& want = direct.per_config[i].topk;
    ASSERT_EQ(got.size(), want.size()) << "config " << i;
    for (size_t e = 0; e < want.size(); ++e) {
      EXPECT_EQ(got[e].pair, want[e].pair) << "config " << i << " entry "
                                           << e;
      EXPECT_EQ(got[e].score, want[e].score) << "config " << i << " entry "
                                             << e;
    }
  }

  // Same seed, same plan — determinism end to end through the executor.
  const JointResult replay = RunJointTopKJoins(corpus, tree, planned);
  ASSERT_TRUE(replay.planner_used);
  EXPECT_EQ(replay.plan.q, with_planner.plan.q);
  EXPECT_EQ(replay.plan.hybrid, with_planner.plan.hybrid);
  EXPECT_EQ(replay.plan.prefilter_threshold,
            with_planner.plan.prefilter_threshold);
}

}  // namespace
}  // namespace mc
