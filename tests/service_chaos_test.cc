// Deterministic chaos harness for the session service: concurrent sessions
// under seeded fault/cancel/evict schedules must all reach a terminal state
// with valid lists or a typed error — never a hang, leak, or crash (the
// survival contract of docs/robustness.md). Run under ASan/TSan by the ci.sh
// `service-chaos` stage; override the seed matrix with MC_CHAOS_SEED.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "service/retry_policy.h"
#include "service/session_manager.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace mc {
namespace {

datagen::GeneratedDataset SmallDataset(uint64_t seed = 45) {
  return datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.15), seed);
}

MatchCatcherOptions FastOptions() {
  MatchCatcherOptions options;
  options.joint.k = 20;
  options.joint.num_threads = 2;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Lists of a terminal session must be internally valid whatever cut the
// session short: finite scores in [0, 1], sorted descending per config.
void ExpectValidLists(const std::vector<std::vector<ScoredPair>>& lists,
                      uint64_t id) {
  for (size_t i = 0; i < lists.size(); ++i) {
    double previous = 2.0;
    for (const ScoredPair& entry : lists[i]) {
      EXPECT_TRUE(std::isfinite(entry.score))
          << "session " << id << " list " << i;
      EXPECT_GE(entry.score, 0.0) << "session " << id << " list " << i;
      EXPECT_LE(entry.score, 1.0) << "session " << id << " list " << i;
      EXPECT_LE(entry.score, previous)
          << "session " << id << " list " << i << " not sorted";
      previous = entry.score;
    }
  }
}

void ExpectListsEqual(const std::vector<std::vector<ScoredPair>>& got,
                      const std::vector<std::vector<ScoredPair>>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << label << " list " << i;
    for (size_t e = 0; e < want[i].size(); ++e) {
      EXPECT_EQ(got[i][e].pair, want[i][e].pair)
          << label << " list " << i << " entry " << e;
      EXPECT_DOUBLE_EQ(got[i][e].score, want[i][e].score)
          << label << " list " << i << " entry " << e;
    }
  }
}

// N concurrent sessions over one registered pair must produce lists
// bit-identical to an isolated DebugSession::Create on the same inputs —
// plane/corpus sharing is a cost optimization, never a semantic one.
TEST(ServiceChaosTest, SharedPlanesBitIdenticalToIsolatedSessions) {
  datagen::GeneratedDataset dataset = SmallDataset();
  MatchCatcherOptions options = FastOptions();

  Result<DebugSession> isolated = DebugSession::Create(
      dataset.table_a, dataset.table_b, dataset.gold, options);
  ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
  const std::vector<std::vector<ScoredPair>> want = isolated->TopKLists();

  ServiceLimits limits;
  limits.max_concurrent_sessions = 3;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  SessionRequest request;
  request.pair_key = "fz";
  request.options = options;

  // First session alone: builds and publishes the shared plane + corpus.
  Result<uint64_t> first = manager.Submit(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<SessionOutcome> first_outcome = manager.Wait(*first);
  ASSERT_TRUE(first_outcome.ok());
  ASSERT_EQ(first_outcome->state, SessionState::kComplete)
      << first_outcome->status.ToString();
  ExpectListsEqual(first_outcome->lists, want, "first session");

  // Later sessions ride the caches — and still match bit-for-bit.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    Result<uint64_t> id = manager.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  size_t corpus_hits = 0;
  for (uint64_t id : ids) {
    Result<SessionOutcome> outcome = manager.Wait(id);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->state, SessionState::kComplete)
        << outcome->status.ToString();
    ExpectListsEqual(outcome->lists, want,
                     "session " + std::to_string(id));
    if (outcome->used_shared_corpus) ++corpus_hits;
  }
  EXPECT_EQ(corpus_hits, ids.size());

  const ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.plane_cache_misses, 1u);  // Exactly one tokenization.
  EXPECT_EQ(stats.plane_cache_hits, ids.size());
  EXPECT_EQ(stats.corpus_builds, 1u);
  EXPECT_EQ(stats.completed, ids.size() + 1);
}

// The chaos scenario proper: a burst of sessions over two pairs with
// probabilistic faults at every retry site, random cancels, tight random
// deadlines, and cache evictions mid-flight. Every admitted session must
// reach a terminal state within the (generous) watchdog window, and its
// outcome must be self-consistent.
void RunChaosScenario(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  datagen::GeneratedDataset fz = SmallDataset(45);
  datagen::GeneratedDataset fz2 = SmallDataset(46);

  ServiceLimits limits;
  limits.max_concurrent_sessions = 3;
  limits.max_queued_sessions = 4;
  limits.watchdog_period_millis = 5;
  limits.checkpoint_dir = FreshDir("chaos-ckpt-" + std::to_string(seed));
  limits.retry.max_attempts = 3;
  limits.retry.initial_backoff_millis = 1;
  limits.retry.max_backoff_millis = 8;
  limits.seed = seed;

  Rng rng(seed);
  size_t admitted = 0, rejected = 0;
  std::vector<uint64_t> ids;
  {
    SessionManager manager(limits);
    ASSERT_TRUE(
        manager.RegisterTablePair("p0", fz.table_a, fz.table_b, fz.gold)
            .ok());
    ASSERT_TRUE(
        manager.RegisterTablePair("p1", fz2.table_a, fz2.table_b, fz2.gold)
            .ok());

    // Real faults at the real sites, deterministic per (seed, hit order).
    ScopedFaultArm admit_fault("service/admit", FaultKind::kError, 0.10,
                               seed ^ 0x1);
    ScopedFaultArm build_fault("service/build", FaultKind::kError, 0.25,
                               seed ^ 0x2);
    ScopedFaultArm corpus_fault("corpus/build_block", FaultKind::kError,
                                0.02, seed ^ 0x3);
    ScopedFaultArm write_fault("session_io/write", FaultKind::kPartialWrite,
                               0.20, seed ^ 0x4);
    ScopedFaultArm delta_fault("service/delta", FaultKind::kError, 0.25,
                               seed ^ 0x5);

    size_t delta_attempts = 0;
    for (int i = 0; i < 14; ++i) {
      SessionRequest request;
      request.pair_key = rng.NextBool(0.5) ? "p0" : "p1";
      request.options = FastOptions();
      if (rng.NextBool(0.3)) {
        request.deadline_millis = rng.NextInRange(1, 40);
      }
      Result<uint64_t> id = manager.Submit(request);
      if (!id.ok()) {
        ++rejected;
        // Rejections must be typed and retryable-or-final, never silent.
        EXPECT_TRUE(id.status().code() == StatusCode::kResourceExhausted ||
                    id.status().code() == StatusCode::kUnavailable)
            << id.status().ToString();
        if (id.status().code() == StatusCode::kResourceExhausted) {
          EXPECT_TRUE(id.status().has_retry_after())
              << id.status().ToString();
          EXPECT_GE(id.status().retry_after_millis(), 1);
        }
        continue;
      }
      ++admitted;
      ids.push_back(*id);
      if (rng.NextBool(0.2)) {
        EXPECT_TRUE(manager.CancelSession(*id).ok());
      }
      if (rng.NextBool(0.15)) {
        manager.EvictSharedPlanes();
      }
      // Interleave incremental deltas with live sessions: a failed patch
      // (fault, eviction-forced rebuild refusal, ...) must be typed and
      // leave the pair serving its prior generation; a committed one bumps
      // it. Either way sessions keep terminating with valid lists.
      if (rng.NextBool(0.35)) {
        const bool on_p0 = rng.NextBool(0.5);
        const datagen::GeneratedDataset& source = on_p0 ? fz : fz2;
        TableDelta delta;
        delta.side = static_cast<uint8_t>(rng.NextBool(0.5) ? 0 : 1);
        const Table& base =
            delta.side == 0 ? source.table_a : source.table_b;
        TableDelta::RowEdit edit;
        edit.row = 0;
        for (size_t c = 0; c < base.num_columns(); ++c) {
          edit.values.emplace_back(base.Value(0, c));
        }
        edit.values[0] += " chaos" + std::to_string(i);
        delta.mutated.push_back(std::move(edit));
        ++delta_attempts;
        const Status applied =
            manager.ApplyTableDelta(on_p0 ? "p0" : "p1", delta);
        if (!applied.ok()) {
          EXPECT_TRUE(applied.code() == StatusCode::kUnavailable ||
                      applied.code() == StatusCode::kResourceExhausted)
              << applied.ToString();
        }
      }
    }

    // Hang-proofing: a bounded wait must suffice for every session.
    for (uint64_t id : ids) {
      Result<SessionOutcome> outcome = manager.WaitFor(id, 30000);
      ASSERT_TRUE(outcome.ok()) << "session " << id << " never terminal: "
                                << outcome.status().ToString();
      const SessionOutcome& result = *outcome;
      switch (result.state) {
        case SessionState::kComplete:
          EXPECT_FALSE(result.truncated);
          EXPECT_TRUE(result.status.ok());
          ExpectValidLists(result.lists, id);
          break;
        case SessionState::kTruncated:
          EXPECT_TRUE(result.truncated);
          ExpectValidLists(result.lists, id);
          break;
        case SessionState::kFailed:
        case SessionState::kCancelled:
          EXPECT_FALSE(result.status.ok())
              << "terminal error state without a typed status";
          EXPECT_NE(result.status.code(), StatusCode::kInternal)
              << result.status.ToString();
          break;
        default:
          FAIL() << "non-terminal state after WaitFor: "
                 << SessionStateName(result.state);
      }
    }

    const ServiceStats stats = manager.stats();
    EXPECT_EQ(stats.admitted, admitted);
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.completed + stats.truncated + stats.failed +
                  stats.cancelled,
              admitted);
    // Delta conservation: every attempt either committed or failed typed.
    EXPECT_EQ(stats.deltas_applied + stats.delta_failures, delta_attempts);
    EXPECT_EQ(stats.memory_release_violations, 0u);
    EXPECT_EQ(manager.live_sessions(), 0u);
    manager.Shutdown();
  }
  // Destruction after Shutdown must be clean (no leaks under ASan, no
  // use-after-free of pool tasks under TSan).
}

TEST(ServiceChaosTest, SeedMatrix) {
  std::vector<uint64_t> seeds = {101, 202, 303};
  if (const char* env = std::getenv("MC_CHAOS_SEED")) {
    seeds = {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  for (uint64_t seed : seeds) RunChaosScenario(seed);
}

TEST(ServiceChaosTest, AdmissionRejectsTypedWhenFull) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.6));
  ServiceLimits limits;
  limits.max_concurrent_sessions = 1;
  limits.max_queued_sessions = 0;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  SessionRequest request;
  request.pair_key = "fz";
  request.options = FastOptions();

  Result<uint64_t> first = manager.Submit(request);
  ASSERT_TRUE(first.ok());
  // Capacity 1: the next submission while the first is live must be a
  // typed kResourceExhausted carrying a usable retry-after hint.
  Result<uint64_t> second = manager.Submit(request);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(second.status().has_retry_after());
  EXPECT_GE(second.status().retry_after_millis(), 1);

  // Unknown pair and impossible cost are final, not retryable.
  SessionRequest unknown = request;
  unknown.pair_key = "nope";
  EXPECT_EQ(manager.Submit(unknown).status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(manager.Wait(*first).ok());

  ServiceLimits tiny = limits;
  tiny.max_session_cost = 1;
  SessionManager strict(tiny);
  ASSERT_TRUE(strict
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  Result<uint64_t> too_big = strict.Submit(request);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(IsRetryableStatus(too_big.status()));
}

TEST(ServiceChaosTest, BuildFaultRetriesThenSucceeds) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ServiceLimits limits;
  limits.retry.max_attempts = 3;
  limits.retry.initial_backoff_millis = 1;
  limits.retry.max_backoff_millis = 4;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  SessionRequest request;
  request.pair_key = "fz";
  request.options = FastOptions();

  // First build attempt fails with a retryable injected fault; the retry
  // policy rebuilds (idempotent) and the session still completes.
  ScopedFaultArm fault("service/build", FaultKind::kError, 1);
  Result<uint64_t> id = manager.Submit(request);
  ASSERT_TRUE(id.ok());
  Result<SessionOutcome> outcome = manager.Wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, SessionState::kComplete)
      << outcome->status.ToString();
  EXPECT_GE(fault.HitCount(), 2u);  // Failed attempt + successful retry.
}

TEST(ServiceChaosTest, MemoryBudgetDegradesToTruncated) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ServiceLimits limits;
  limits.memory_limit_bytes = 256;  // Far below any arena.
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  SessionRequest request;
  request.pair_key = "fz";
  request.options = FastOptions();
  Result<uint64_t> id = manager.Submit(request);
  ASSERT_TRUE(id.ok());
  Result<SessionOutcome> outcome = manager.Wait(*id);
  ASSERT_TRUE(outcome.ok());
  // Plane and corpus charges are refused, so the session degrades to a
  // truncated (possibly empty) result instead of overshooting the ceiling.
  EXPECT_EQ(outcome->state, SessionState::kTruncated)
      << SessionStateName(outcome->state) << " "
      << outcome->status.ToString();
  const ServiceStats stats = manager.stats();
  EXPECT_GT(stats.memory_rejected_charges, 0u);
  EXPECT_LE(stats.memory_used_bytes, limits.memory_limit_bytes);
}

TEST(ServiceChaosTest, CheckpointRestoreAfterRestart) {
  const std::string dir = FreshDir("service-restore");
  datagen::GeneratedDataset dataset = SmallDataset();
  std::vector<std::vector<ScoredPair>> want;
  uint64_t completed_id = 0;
  {
    ServiceLimits limits;
    limits.checkpoint_dir = dir;
    SessionManager manager(limits);
    ASSERT_TRUE(manager
                    .RegisterTablePair("fz", dataset.table_a,
                                       dataset.table_b, dataset.gold)
                    .ok());
    SessionRequest request;
    request.pair_key = "fz";
    request.options = FastOptions();
    Result<uint64_t> id = manager.Submit(request);
    ASSERT_TRUE(id.ok());
    completed_id = *id;
    Result<SessionOutcome> outcome = manager.Wait(completed_id);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->state, SessionState::kComplete);
    ASSERT_TRUE(outcome->checkpoint_status.ok())
        << outcome->checkpoint_status.ToString();
    want = outcome->lists;
  }  // "Crash": the manager dies; the checkpoint survives.

  {
    ServiceLimits limits;
    limits.checkpoint_dir = dir;
    SessionManager manager(limits);
    Result<size_t> restored = manager.RestoreFromCheckpoints();
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(*restored, 1u);
    Result<SessionOutcome> outcome = manager.Wait(completed_id);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->state, SessionState::kComplete);
    EXPECT_TRUE(outcome->restored);
    ExpectListsEqual(outcome->lists, want, "restored session");
  }

  // Corrupt the checkpoint body: restore must skip it with a typed count,
  // not crash, and report zero sessions.
  {
    const std::string path =
        dir + "/session-" + std::to_string(completed_id) + ".mc";
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(content.size(), 24u);
    content[content.size() / 2] ^= 0x20;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    out.close();

    ServiceLimits limits;
    limits.checkpoint_dir = dir;
    limits.retry.initial_backoff_millis = 1;
    limits.retry.max_backoff_millis = 2;
    SessionManager manager(limits);
    Result<size_t> restored = manager.RestoreFromCheckpoints();
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, 0u);
    EXPECT_GE(manager.stats().restore_failures, 1u);
  }
}

TEST(ServiceChaosTest, ShutdownDrainsEverySession) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;
  limits.max_queued_sessions = 8;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  SessionRequest request;
  request.pair_key = "fz";
  request.options = FastOptions();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    Result<uint64_t> id = manager.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  manager.Shutdown();  // Cancels the root; drains queued + running.
  for (uint64_t id : ids) {
    Result<SessionState> state = manager.StateOf(id);
    ASSERT_TRUE(state.ok());
    EXPECT_TRUE(IsTerminalState(*state)) << SessionStateName(*state);
  }
  EXPECT_EQ(manager.live_sessions(), 0u);
  // Post-shutdown submissions are typed, not crashes.
  EXPECT_EQ(manager.Submit(request).status().code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace mc
