#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/profile.h"
#include "table/schema.h"
#include "table/table.h"

namespace mc {
namespace {

Table MakePeopleTable() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"Dave Smith", "Altanta", "18"});
  table.AddRow({"Daniel Smith", "LA", "18"});
  table.AddRow({"Joe Welson", "New York", "25"});
  table.AddRow({"Charles Williams", "Chicago", "45"});
  table.AddRow({"Charlie William", "Atlanta", ""});
  return table;
}

TEST(SchemaTest, IndexLookup) {
  Schema schema({{"name", AttributeType::kString},
                 {"age", AttributeType::kNumeric}});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.IndexOf("age").value(), 1u);
  EXPECT_FALSE(schema.IndexOf("salary").has_value());
  EXPECT_EQ(schema.RequireIndexOf("name"), 0u);
  EXPECT_STREQ(AttributeTypeName(schema.attribute(1).type), "numeric");
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", AttributeType::kString}});
  Schema b({{"x", AttributeType::kString}});
  Schema c({{"x", AttributeType::kNumeric}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TableTest, AddAndAccess) {
  Table table = MakePeopleTable();
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.Value(0, 0), "Dave Smith");
  EXPECT_EQ(table.Value(2, 1), "New York");
  EXPECT_FALSE(table.IsMissing(0, 2));
  EXPECT_TRUE(table.IsMissing(4, 2));
}

TEST(TableTest, TryAddRowValidatesArityAndCellSize) {
  Table table = MakePeopleTable();
  EXPECT_EQ(table.TryAddRow({"Ann Lee", "Boston", "30"}).code(),
            StatusCode::kOk);
  EXPECT_EQ(table.num_rows(), 6u);
  // Wrong arity is a typed rejection, not a crash, and adds nothing.
  EXPECT_EQ(table.TryAddRow({"too", "short"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 6u);

  // A cell past MaxCellBytes would overflow the text plane's uint32 span
  // lengths; it must be rejected up front, not silently truncated later.
  Table::SetMaxCellBytesForTest(16);
  EXPECT_EQ(
      table.TryAddRow({"a cell well beyond sixteen bytes", "x", "1"}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 6u);
  EXPECT_EQ(table.TryAddRow({"short", "x", "1"}).code(), StatusCode::kOk);
  Table::SetMaxCellBytesForTest(0);  // Restore the default.
}

TEST(TableTest, SetRowReplacesInPlaceAndRevalidates) {
  Table table = MakePeopleTable();
  ASSERT_EQ(table.SetRow(1, {"Dan Smith", "", "19"}).code(), StatusCode::kOk);
  EXPECT_EQ(table.num_rows(), 5u);  // In place, no growth.
  EXPECT_EQ(table.Value(1, 0), "Dan Smith");
  EXPECT_TRUE(table.IsMissing(1, 1));   // Missing bits recomputed.
  EXPECT_FALSE(table.IsMissing(1, 0));
  // Out-of-range row and bad arity are typed errors that change nothing.
  EXPECT_EQ(table.SetRow(5, {"x", "y", "z"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.SetRow(0, {"just one"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Value(0, 0), "Dave Smith");
}

TEST(TableTest, NumericValue) {
  Table table = MakePeopleTable();
  EXPECT_EQ(table.NumericValue(0, 2).value(), 18.0);
  EXPECT_FALSE(table.NumericValue(4, 2).has_value());  // missing.
  EXPECT_FALSE(table.NumericValue(0, 0).has_value());  // non-numeric.
}

TEST(TableTest, ParseDouble) {
  EXPECT_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_EQ(ParseDouble(" 42 ").value(), 42.0);
  EXPECT_EQ(ParseDouble("$19.99").value(), 19.99);
  EXPECT_EQ(ParseDouble("-7e2").value(), -700.0);
  EXPECT_FALSE(ParseDouble("12 apples").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(CsvTest, RoundTrip) {
  Table table = MakePeopleTable();
  std::string csv = WriteCsvString(table);
  Result<Table> parsed = ReadCsvString(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(parsed->Value(r, c), table.Value(r, c));
    }
  }
}

TEST(CsvTest, QuotedFields) {
  Result<Table> parsed = ReadCsvString(
      "name,desc\n"
      "\"Smith, Dave\",\"said \"\"hi\"\"\"\n"
      "plain,\"multi\nline\"\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Value(0, 0), "Smith, Dave");
  EXPECT_EQ(parsed->Value(0, 1), "said \"hi\"");
  EXPECT_EQ(parsed->Value(1, 1), "multi\nline");
}

TEST(CsvTest, CrLfLineEndings) {
  Result<Table> parsed = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Value(1, 1), "4");
}

TEST(CsvTest, MissingTrailingNewline) {
  Result<Table> parsed = ReadCsvString("a,b\n1,2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->Value(0, 1), "2");
}

TEST(CsvTest, ErrorsAreReported) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1,2,3\n").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n\"open,2\n").ok());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv").ok());
}

TEST(CsvMalformedTest, RaggedRowReportsLineNumber) {
  Result<Table> parsed = ReadCsvString("a,b\n1,2\n3,4,5\n6,7\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("CSV line 3"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("3 fields, expected 2"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(CsvMalformedTest, UnterminatedQuoteReportsOpeningLine) {
  Result<Table> parsed = ReadCsvString("a,b\n1,2\n3,\"never closed\n5,6\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // Reported at the line the quote opened, not where the input ran out.
  EXPECT_NE(parsed.status().message().find("CSV line 3"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("unterminated"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(CsvMalformedTest, EmbeddedNulByteIsRejected) {
  std::string text("a,b\n1,x\0y\n", 10);
  Result<Table> parsed = ReadCsvString(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("CSV line 2"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("NUL"), std::string::npos)
      << parsed.status().ToString();

  // NUL inside a quoted field is just as suspect.
  std::string quoted("a,b\n1,\"x\0y\"\n", 12);
  Result<Table> parsed_quoted = ReadCsvString(quoted);
  ASSERT_FALSE(parsed_quoted.ok());
  EXPECT_EQ(parsed_quoted.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvMalformedTest, QuoteInsideUnquotedFieldIsRejected) {
  Result<Table> parsed = ReadCsvString("a,b\n1,mid\"dle\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("CSV line 2"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("quote inside unquoted field"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(CsvMalformedTest, LineNumbersCountThroughMultilineQuotedFields) {
  // The quoted field on line 2 spans three physical lines, so the ragged
  // record after it starts on physical line 5.
  Result<Table> parsed =
      ReadCsvString("a,b\n1,\"two\nphysical\nlines\"\n5,6,7\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("CSV line 5"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ProfileTest, MissingAndUniqueRatios) {
  Schema schema({{"city", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"Atlanta"});
  table.AddRow({"Atlanta"});
  table.AddRow({"LA"});
  table.AddRow({""});
  AttributeProfile profile = ProfileAttribute(table, 0);
  EXPECT_DOUBLE_EQ(profile.non_missing_ratio, 0.75);
  EXPECT_DOUBLE_EQ(profile.unique_ratio, 2.0 / 3.0);
  // harmonic mean of 0.75 and 2/3.
  EXPECT_NEAR(profile.SingleTableEScore(),
              2 * 0.75 * (2.0 / 3.0) / (0.75 + 2.0 / 3.0), 1e-12);
}

TEST(ProfileTest, AverageTokenLengthCountsMissingAsZero) {
  Schema schema({{"desc", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"one two three"});
  table.AddRow({""});
  AttributeProfile profile = ProfileAttribute(table, 0);
  EXPECT_DOUBLE_EQ(profile.average_token_length, 1.5);
}

TEST(ProfileTest, ValueSetJaccard) {
  Schema schema({{"gender", AttributeType::kString}});
  Table ta(schema), tb(schema);
  ta.AddRow({"Male"});
  ta.AddRow({"Female"});
  tb.AddRow({"male"});
  tb.AddRow({"unknown"});
  AttributeProfile pa = ProfileAttribute(ta, 0);
  AttributeProfile pb = ProfileAttribute(tb, 0);
  // Normalized values: {male, female} vs {male, unknown}: 1/3.
  EXPECT_NEAR(ValueSetJaccard(pa, pb), 1.0 / 3.0, 1e-12);
}

TEST(InferTypesTest, DetectsNumericCategoricalBooleanString) {
  Schema schema({{"price", AttributeType::kString},
                 {"category", AttributeType::kString},
                 {"in_stock", AttributeType::kString},
                 {"title", AttributeType::kString}});
  Table table(schema);
  const char* categories[] = {"laptop", "phone", "tablet"};
  for (int i = 0; i < 60; ++i) {
    table.AddRow({std::to_string(i * 3.5), categories[i % 3],
                  i % 2 == 0 ? "yes" : "no",
                  "Unique Product Title Number " + std::to_string(i)});
  }
  Schema inferred = InferAttributeTypes(table);
  EXPECT_EQ(inferred.attribute(0).type, AttributeType::kNumeric);
  EXPECT_EQ(inferred.attribute(1).type, AttributeType::kCategorical);
  EXPECT_EQ(inferred.attribute(2).type, AttributeType::kBoolean);
  EXPECT_EQ(inferred.attribute(3).type, AttributeType::kString);
}

TEST(InferTypesTest, MostlyNumericWithNoiseStillNumeric) {
  Schema schema({{"year", AttributeType::kString}});
  Table table(schema);
  for (int i = 0; i < 19; ++i) table.AddRow({std::to_string(1990 + i)});
  table.AddRow({"unknown"});
  Schema inferred = InferAttributeTypes(table);
  EXPECT_EQ(inferred.attribute(0).type, AttributeType::kNumeric);
}

TEST(TableTest, SetSchemaKeepsNames) {
  Table table = MakePeopleTable();
  Schema inferred = InferAttributeTypes(table);
  table.SetSchema(inferred);
  EXPECT_EQ(table.schema().attribute(2).type, AttributeType::kNumeric);
}

}  // namespace
}  // namespace mc
