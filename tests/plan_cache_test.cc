// Cross-session plan cache + online calibration suite. The contract under
// test (docs/algorithms.md §"Threshold-join mode & the plan cache"): a
// session served a memoized joint plan is bit-identical to one that planned
// fresh — across warm repeats, randomized delta schedules (every commit
// invalidates the pair's cached plans), an injected torn-cache-entry fault
// (degrades to re-planning, never to wrong output), and LRU plane eviction
// (reclaims the plans, counted in ServiceStats::plans_evicted). The
// CostModelCalibrator is deterministic given the observation sequence, and
// MC_PLANNER_CALIBRATE=0 severs the feedback loop. Run under ASan by the
// ci.sh `plan-cache` stage; override the seed matrix with MC_PLANCACHE_SEED.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_catcher.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "service/session_manager.h"
#include "ssj/corpus.h"
#include "ssj/cost_calibrator.h"
#include "ssj/join_planner.h"
#include "ssj/topk_join.h"
#include "table/table_delta.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace mc {
namespace {

datagen::GeneratedDataset SmallDataset(uint64_t seed = 53) {
  return datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.12), seed);
}

std::vector<uint64_t> SeedMatrix() {
  if (const char* env = std::getenv("MC_PLANCACHE_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  return {5, 17};
}

// Planner-eligible options: q = 0 under QSelection::kPlanner is what the
// cache keys on — a session with a fixed q has no plan to memoize.
MatchCatcherOptions PlannerOptions() {
  MatchCatcherOptions options;
  options.joint.k = 20;
  options.joint.q = 0;
  options.joint.num_threads = 2;
  options.infer_types = false;  // Schema fixed: delta rounds keep the tree.
  return options;
}

SessionOutcome MustRun(SessionManager& manager, const SessionRequest& request) {
  Result<uint64_t> id = manager.Submit(request);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  Result<SessionOutcome> outcome = manager.Wait(*id);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->state, SessionState::kComplete)
      << outcome->status.ToString();
  return *outcome;
}

// One random delta against `table`: mutated rows with fresh tokens, an
// append, an occasional tombstone — enough shape variety to shift the
// planner's corpus statistics between generations.
TableDelta RandomDelta(const Table& table, uint8_t side, size_t generation,
                       Rng& rng) {
  TableDelta delta;
  delta.side = side;
  const size_t rows = table.num_rows();
  const size_t cols = table.num_columns();
  auto row_values = [&](size_t row) {
    std::vector<std::string> values;
    values.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      values.emplace_back(table.Value(row, c));
    }
    return values;
  };
  const size_t mutations = 1 + rng.NextBelow(3);
  for (size_t m = 0; m < mutations; ++m) {
    TableDelta::RowEdit edit;
    edit.row = static_cast<uint32_t>(rng.NextBelow(rows));
    edit.values = row_values(edit.row);
    edit.values[rng.NextBelow(cols)] +=
        " g" + std::to_string(generation) + "tok" + std::to_string(m);
    delta.mutated.push_back(std::move(edit));
  }
  if (rng.NextBool(0.7)) {
    std::vector<std::string> appended = row_values(rng.NextBelow(rows));
    appended[0] += " appended" + std::to_string(generation);
    delta.appended.push_back(std::move(appended));
  }
  return delta;
}

// ---------------------------------------------------------------------------
// Warm reuse: the first planner-eligible session on a pair publishes its
// plan; every following identical session is served from the cache with
// bit-identical lists. The --no-plan-cache ablation plans fresh every time
// and still produces the same bytes.

TEST(PlanCacheTest, WarmSessionsServeTheMemoizedPlanBitIdentically) {
  datagen::GeneratedDataset dataset = SmallDataset();
  SessionRequest request;
  request.pair_key = "fz";
  request.options = PlannerOptions();

  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;
  SessionManager cached(limits);
  ASSERT_TRUE(cached
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  const SessionOutcome cold = MustRun(cached, request);
  ASSERT_TRUE(cold.planner_used);
  EXPECT_FALSE(cold.plan_cache_hit);
  const uint32_t want_crc = TopKListsCrc(cold.lists);

  for (int warm = 0; warm < 2; ++warm) {
    const SessionOutcome outcome = MustRun(cached, request);
    EXPECT_TRUE(outcome.plan_cache_hit) << "warm session " << warm;
    EXPECT_TRUE(outcome.planner_used);
    EXPECT_EQ(TopKListsCrc(outcome.lists), want_crc)
        << "cached-plan session diverged from the fresh-planned one";
    // The served plan is the published one, not a re-derivation.
    EXPECT_EQ(outcome.plan.q, cold.plan.q);
    EXPECT_EQ(outcome.plan.mode, cold.plan.mode);
    EXPECT_EQ(outcome.plan.prefilter_threshold, cold.plan.prefilter_threshold);
  }

  ServiceStats stats = cached.stats();
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 2u);
  EXPECT_EQ(stats.plans_computed, 1u);  // Hits never run the planner.

  // Ablation: with the cache off every session plans fresh — three planner
  // runs, no hit/miss accounting — and the output is byte-for-byte the same.
  ServiceLimits no_cache = limits;
  no_cache.enable_plan_cache = false;
  SessionManager fresh(no_cache);
  ASSERT_TRUE(fresh
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  for (int i = 0; i < 3; ++i) {
    const SessionOutcome outcome = MustRun(fresh, request);
    EXPECT_FALSE(outcome.plan_cache_hit);
    EXPECT_EQ(TopKListsCrc(outcome.lists), want_crc);
  }
  stats = fresh.stats();
  EXPECT_EQ(stats.plan_cache_hits, 0u);
  EXPECT_EQ(stats.plan_cache_misses, 0u);
  EXPECT_EQ(stats.plans_computed, 3u);
}

// ---------------------------------------------------------------------------
// Randomized delta schedules: every committed delta invalidates the pair's
// cached plans (the old plan was fitted to a corpus generation that no
// longer exists), and the session served the re-published plan is
// bit-identical to fresh-planned sessions over the same patched state —
// both the re-planning session on this manager and every session of a
// mirror manager running with the cache disabled.

TEST(PlanCacheTest, DeltaSchedulesInvalidateAndStayBitIdentical) {
  for (uint64_t seed : SeedMatrix()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    datagen::GeneratedDataset dataset = SmallDataset();
    Table table_a = dataset.table_a;  // Mirror of the service's tables.
    Table table_b = dataset.table_b;

    SessionRequest request;
    request.pair_key = "fz";
    request.options = PlannerOptions();

    ServiceLimits limits;
    limits.max_concurrent_sessions = 2;
    SessionManager manager(limits);
    ASSERT_TRUE(
        manager.RegisterTablePair("fz", table_a, table_b, dataset.gold).ok());
    // The ground-truth mirror: identical pair, identical deltas, never a
    // cached plan. Its sessions are always fresh-planned, and the patched
    // planes it plans over are bit-identical to the cached manager's (the
    // delta patch contract), so any cache-induced divergence shows up as a
    // checksum mismatch.
    ServiceLimits no_cache = limits;
    no_cache.enable_plan_cache = false;
    SessionManager mirror(no_cache);
    ASSERT_TRUE(
        mirror.RegisterTablePair("fz", table_a, table_b, dataset.gold).ok());

    // Warm the cache on generation 1.
    MustRun(manager, request);
    EXPECT_TRUE(MustRun(manager, request).plan_cache_hit);

    Rng rng(seed);
    for (size_t round = 1; round <= 3; ++round) {
      const uint8_t side = static_cast<uint8_t>(round % 2);
      const TableDelta delta =
          RandomDelta(side == 0 ? table_a : table_b, side, round, rng);
      ASSERT_TRUE(ApplyDeltaToTable(side == 0 ? table_a : table_b, delta).ok());
      ASSERT_TRUE(manager.ApplyTableDelta("fz", delta).ok());
      ASSERT_TRUE(mirror.ApplyTableDelta("fz", delta).ok());

      const SessionOutcome fresh = MustRun(mirror, request);
      EXPECT_FALSE(fresh.plan_cache_hit);
      const uint32_t want_crc = TopKListsCrc(fresh.lists);

      const SessionOutcome replanned = MustRun(manager, request);
      EXPECT_FALSE(replanned.plan_cache_hit)
          << "a committed delta must invalidate the cached plan (round "
          << round << ")";
      EXPECT_EQ(TopKListsCrc(replanned.lists), want_crc) << "round " << round;

      const SessionOutcome served = MustRun(manager, request);
      EXPECT_TRUE(served.plan_cache_hit) << "round " << round;
      EXPECT_EQ(TopKListsCrc(served.lists), want_crc)
          << "cached-plan session diverged after the delta (round " << round
          << ")";
    }

    const ServiceStats stats = manager.stats();
    EXPECT_EQ(stats.deltas_applied, 3u);
    // 1 cold + 3 post-delta re-plans; every second session a hit.
    EXPECT_EQ(stats.plan_cache_misses, 4u);
    EXPECT_EQ(stats.plan_cache_hits, 4u);
  }
}

// ---------------------------------------------------------------------------
// Fault point "service/plan_cache": a torn cache entry is dropped and the
// session re-plans — the degradation is one planner run, never wrong
// output, and the re-published plan serves the next session again.

TEST(PlanCacheTest, TornCacheEntryDegradesToReplanningNeverWrongOutput) {
  datagen::GeneratedDataset dataset = SmallDataset();
  SessionRequest request;
  request.pair_key = "fz";
  request.options = PlannerOptions();

  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  const SessionOutcome cold = MustRun(manager, request);
  const uint32_t want_crc = TopKListsCrc(cold.lists);
  EXPECT_TRUE(MustRun(manager, request).plan_cache_hit);

  {
    ScopedFaultArm fault("service/plan_cache", FaultKind::kError);
    const SessionOutcome torn = MustRun(manager, request);
    EXPECT_GE(fault.HitCount(), 1u);
    EXPECT_FALSE(torn.plan_cache_hit)
        << "a torn entry must be treated as a miss";
    EXPECT_TRUE(torn.planner_used);
    EXPECT_EQ(TopKListsCrc(torn.lists), want_crc)
        << "the fault may cost a planner run, never output";
  }

  // The faulted session re-planned and re-published; the cache is warm
  // again the moment the fault clears.
  const SessionOutcome recovered = MustRun(manager, request);
  EXPECT_TRUE(recovered.plan_cache_hit);
  EXPECT_EQ(TopKListsCrc(recovered.lists), want_crc);

  const ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.plan_cache_misses, 2u);  // Cold + torn.
  EXPECT_EQ(stats.plan_cache_hits, 2u);
  EXPECT_EQ(stats.plans_computed, 2u);
}

// ---------------------------------------------------------------------------
// LRU plane eviction reclaims the pair's cached plans along with the plane
// and corpus, counted in plans_evicted; the next session re-plans and
// re-warms. Delta invalidations are deliberately not part of this counter.

TEST(PlanCacheTest, EvictionReclaimsCachedPlans) {
  datagen::GeneratedDataset dataset = SmallDataset();
  SessionRequest request;
  request.pair_key = "fz";
  request.options = PlannerOptions();

  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  const SessionOutcome cold = MustRun(manager, request);
  const uint32_t want_crc = TopKListsCrc(cold.lists);
  EXPECT_TRUE(MustRun(manager, request).plan_cache_hit);
  EXPECT_EQ(manager.stats().plans_evicted, 0u);

  EXPECT_GE(manager.EvictSharedPlanes(), 1u);
  EXPECT_EQ(manager.stats().plans_evicted, 1u);

  const SessionOutcome replanned = MustRun(manager, request);
  EXPECT_FALSE(replanned.plan_cache_hit)
      << "eviction must reclaim the cached plan";
  EXPECT_EQ(TopKListsCrc(replanned.lists), want_crc);
  const SessionOutcome rewarmed = MustRun(manager, request);
  EXPECT_TRUE(rewarmed.plan_cache_hit);
  EXPECT_EQ(TopKListsCrc(rewarmed.lists), want_crc);
}

// ---------------------------------------------------------------------------
// Calibrator: deterministic given the observation sequence, pinned event
// weight, Reset() back to the defaults — and observations generated by a
// consistent linear model are actually accepted as a refit.

TEST(CostCalibratorTest, DeterministicGivenTheObservationSequence) {
  CostModelCalibrator first, second;
  const CostWeights defaults;
  const size_t n = 2 * CostModelCalibrator::kRefitPeriod;
  for (size_t i = 0; i < n; ++i) {
    // Varied shapes (so the normal equations are well-conditioned), with
    // seconds drawn exactly from the default model at 10ns per unit: the
    // fit recovers the defaults and passes the drift gate.
    CostObservation obs;
    obs.events = 1000 + 337 * i * i % 9001;
    obs.probes = 400 + 211 * i % 5003;
    obs.scored = 20 + 17 * i % 401;
    obs.mean_tokens = 4.0 + static_cast<double>(i % 7);
    obs.seconds =
        (defaults.event * static_cast<double>(obs.events) +
         defaults.probe * static_cast<double>(obs.probes) +
         defaults.score_base * static_cast<double>(obs.scored) +
         defaults.score_token * static_cast<double>(obs.scored) *
             obs.mean_tokens) *
        1e-8;
    first.Record(obs);
    second.Record(obs);
    const CostWeights a = first.weights();
    const CostWeights b = second.weights();
    EXPECT_EQ(a.event, b.event) << "observation " << i;
    EXPECT_EQ(a.probe, b.probe) << "observation " << i;
    EXPECT_EQ(a.score_base, b.score_base) << "observation " << i;
    EXPECT_EQ(a.score_token, b.score_token) << "observation " << i;
  }
  EXPECT_EQ(first.observations(), n);
  EXPECT_EQ(first.refits(), second.refits());
  EXPECT_GE(first.refits(), 1u)
      << "a consistent observation stream must produce an accepted fit";
  EXPECT_EQ(first.weights().event, 1.0) << "event weight stays pinned";

  // Zero-signal observations carry nothing and are dropped.
  CostObservation empty;
  first.Record(empty);
  EXPECT_EQ(first.observations(), n);

  first.Reset();
  EXPECT_EQ(first.observations(), 0u);
  EXPECT_EQ(first.refits(), 0u);
  EXPECT_EQ(first.weights().probe, defaults.probe);
  EXPECT_EQ(first.weights().score_token, defaults.score_token);
}

// MC_PLANNER_CALIBRATE=0 severs the feedback loop: a manager constructed
// under the ablation never feeds the process calibrator; one constructed
// without it does. (The env is read at construction, matching mcserve.)

TEST(CostCalibratorTest, AblationEnvDisablesTheFeedbackLoop) {
  datagen::GeneratedDataset dataset = SmallDataset();
  SessionRequest request;
  request.pair_key = "fz";
  request.options = PlannerOptions();
  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;

  const size_t before = CostModelCalibrator::Process().observations();
  {
    ::setenv("MC_PLANNER_CALIBRATE", "0", 1);
    SessionManager ablated(limits);
    ::unsetenv("MC_PLANNER_CALIBRATE");
    ASSERT_TRUE(ablated
                    .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                       dataset.gold)
                    .ok());
    MustRun(ablated, request);
    EXPECT_EQ(CostModelCalibrator::Process().observations(), before)
        << "the ablation must not feed the process calibrator";
  }
  {
    SessionManager live(limits);
    ASSERT_TRUE(live
                    .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                       dataset.gold)
                    .ok());
    MustRun(live, request);
    EXPECT_GT(CostModelCalibrator::Process().observations(), before)
        << "an enabled manager reports executed joins";
  }
}

// ---------------------------------------------------------------------------
// The calibration/determinism boundary: a drifted fit may steer only
// output-neutral plan knobs. q changes which pairs are eligible at all (a
// pair sharing fewer than q tokens is invisible to the q-overlap index), so
// the q ladder is priced with the pinned default weights — any weights, no
// matter how skewed, must produce a plan whose q, mode, and threshold are
// identical to the uncalibrated plan, and executing either plan must yield
// the same bytes at every shard count.

TEST(CostCalibratorTest, CalibratedWeightsNeverChangeTheJoinedBytes) {
  datagen::GeneratedDataset dataset = SmallDataset();
  SsjCorpus corpus = SsjCorpus::Build(dataset.table_a, dataset.table_b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  struct PlannerOptions planner;  // Elaborated: the helper above shadows it.
  planner.k = 20;
  planner.measure = SetMeasure::kJaccard;
  const JoinPlan pinned = PlanTopKJoin(corpus, view, planner);

  struct PlannerOptions skewed = planner;
  skewed.weights.probe = 80.0;       // Default 0.5: probes priced 160x up.
  skewed.weights.score_base = 0.01;  // Default 4.0: scoring nearly free.
  skewed.weights.score_token = 0.0;
  const JoinPlan drifted = PlanTopKJoin(corpus, view, skewed);

  EXPECT_EQ(drifted.q, pinned.q);
  EXPECT_EQ(drifted.mode, pinned.mode);
  EXPECT_EQ(drifted.prefilter_threshold, pinned.prefilter_threshold);
  EXPECT_EQ(drifted.cost_per_q, pinned.cost_per_q)
      << "the reported q ladder must be the pinned pricing the pick used";

  TopKJoinOptions run;
  run.k = planner.k;
  run.measure = planner.measure;
  run.q = pinned.q;
  const TopKList sequential = RunTopKJoin(view, run);
  TopKJoinOptions sharded_run = run;
  sharded_run.shards = 4;  // The only knob calibration may move.
  const TopKList sharded = RunTopKJoin(view, sharded_run);
  const auto a = sequential.SortedDescending();
  const auto b = sharded.SortedDescending();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pair, b[i].pair) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

}  // namespace
}  // namespace mc
