#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/metrics.h"
#include "blocking/standard_blockers.h"
#include "datagen/generator.h"
#include "explain/repair.h"
#include "table/table.h"

namespace mc {
namespace {

TEST(RepairTest, SuggestsGramRuleForMisspellings) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  std::vector<PairId> confirmed;
  for (int i = 0; i < 6; ++i) {
    std::string name = "charles williams" + std::to_string(i);
    a.AddRow({name, "atlanta"});
    // B side: one-character typo.
    std::string corrupted = name;
    corrupted[3] = 'x';
    b.AddRow({corrupted, "atlanta"});
    confirmed.push_back(MakePairId(i, i));
  }
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(a, b, confirmed);
  ASSERT_FALSE(suggestions.empty());
  const RepairSuggestion& top = suggestions.front();
  EXPECT_EQ(top.kind, ProblemKind::kMisspelling);
  EXPECT_EQ(top.column, 0u);
  EXPECT_EQ(top.support, 6u);
  EXPECT_EQ(top.recovered, 6u);  // 3-gram rule must recover all of them.
  EXPECT_NE(top.addition->Description(schema).find("3gram"),
            std::string::npos);
  std::string rendered = RenderRepairs(schema, suggestions);
  EXPECT_NE(rendered.find("recovers 6 of 6"), std::string::npos);
}

TEST(RepairTest, MissingValueFallsBackToComplementaryAttribute) {
  Schema schema({{"brand", AttributeType::kString},
                 {"title", AttributeType::kString}});
  Table a(schema), b(schema);
  std::vector<PairId> confirmed;
  for (int i = 0; i < 5; ++i) {
    std::string title = "product " + std::to_string(i) + " deluxe kit";
    a.AddRow({"acme", title});
    b.AddRow({"", title});  // Brand missing; title agrees.
    confirmed.push_back(MakePairId(i, i));
  }
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(a, b, confirmed);
  ASSERT_FALSE(suggestions.empty());
  const RepairSuggestion& top = suggestions.front();
  EXPECT_EQ(top.kind, ProblemKind::kMissingValue);
  EXPECT_NE(top.addition->Description(schema).find("title"),
            std::string::npos);
  EXPECT_EQ(top.recovered, 5u);
}

TEST(RepairTest, NoSuggestionsForCleanPairs) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"same value"});
  b.AddRow({"same value"});
  EXPECT_TRUE(SuggestRepairs(a, b, {MakePairId(0, 0)}).empty());
}

TEST(RepairTest, SuggestedUnionImprovesRecallOnGeneratedData) {
  // End-to-end: city-equality blocker on restaurants; the suggestions
  // derived from its killed matches, unioned onto the blocker, must raise
  // recall.
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats();
  size_t city = dataset.table_a.schema().RequireIndexOf("city");
  auto blocker = HashBlocker::AttributeEquivalence(city);
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);
  BlockerMetrics before =
      EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());
  ASSERT_GT(before.killed_matches, 0u);

  // The killed-off gold matches stand in for verifier-confirmed ones.
  std::vector<PairId> confirmed;
  for (PairId pair : dataset.gold) {
    if (!c.Contains(pair)) confirmed.push_back(pair);
  }
  std::vector<RepairSuggestion> suggestions =
      SuggestRepairs(dataset.table_a, dataset.table_b, confirmed);
  ASSERT_FALSE(suggestions.empty());

  std::vector<std::shared_ptr<const Blocker>> members{blocker};
  for (const RepairSuggestion& suggestion : suggestions) {
    members.push_back(suggestion.addition);
  }
  UnionBlocker repaired(members);
  CandidateSet c2 = repaired.Run(dataset.table_a, dataset.table_b);
  BlockerMetrics after =
      EvaluateBlocking(c2, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());
  EXPECT_GT(after.recall, before.recall);
  EXPECT_GT(after.recall, 0.97) << "suggestions should recover nearly all";
}

}  // namespace
}  // namespace mc
