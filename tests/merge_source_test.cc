// Direct tests for RunTopKJoin's MergeSource path — the §4.2 "parent
// finishes late, child merges its list mid-run" mechanism. On a single-core
// host the joint executor almost always seeds instead, so this path needs
// explicit coverage.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "util/random.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomTables(Rng& rng, size_t rows) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  auto make_row = [&](Table& table) {
    std::string text;
    size_t n = 2 + rng.NextBelow(6);
    for (size_t t = 0; t < n; ++t) {
      if (t > 0) text += ' ';
      text += "w" + std::to_string(rng.NextZipf(30, 0.8));
    }
    table.AddRow({text});
  };
  for (size_t i = 0; i < rows; ++i) {
    make_row(a);
    make_row(b);
  }
  return {std::move(a), std::move(b)};
}

// Delivers a payload on the n-th TryFetch call.
class DelayedMergeSource : public MergeSource {
 public:
  DelayedMergeSource(std::vector<ScoredPair> payload, int deliveries_after)
      : payload_(std::move(payload)), countdown_(deliveries_after) {}

  std::optional<std::vector<ScoredPair>> TryFetch() override {
    ++calls_;
    if (--countdown_ > 0) return std::nullopt;
    if (delivered_) return std::nullopt;
    delivered_ = true;
    return payload_;
  }

  int calls() const { return calls_; }
  bool delivered() const { return delivered_; }

 private:
  std::vector<ScoredPair> payload_;
  int countdown_;
  int calls_ = 0;
  bool delivered_ = false;
};

class MergeSourceTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeSourceTest, LateMergePreservesExactness) {
  Rng rng(404);
  auto [a, b] = RandomTables(rng, 60);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions options;
  options.k = 25;
  options.merge_poll_period = 64;  // Poll often so delivery lands mid-run.

  TopKList expected = RunTopKJoin(view, options);

  // Payload: correct scores for an arbitrary slice of pairs (as a parent's
  // re-adjusted top-k would be).
  DirectPairScorer scorer(&view, options.measure);
  std::vector<ScoredPair> payload;
  for (RowId i = 0; i < 30; ++i) {
    RowId j = (i * 7) % 60;
    if (view.a(i).empty() || view.b(j).empty()) continue;
    payload.push_back(ScoredPair{MakePairId(i, j), scorer.Score(i, j)});
  }

  DelayedMergeSource merge(payload, GetParam());
  TopKJoinStats stats;
  TopKList merged =
      RunTopKJoin(view, options, nullptr, nullptr, &merge, &stats);
  EXPECT_TRUE(merge.delivered());
  EXPECT_EQ(stats.merges_applied, 1u);

  std::vector<ScoredPair> got = merged.SortedDescending();
  std::vector<ScoredPair> want = expected.SortedDescending();
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < got.size(); ++r) {
    EXPECT_NEAR(got[r].score, want[r].score, 1e-12) << "rank " << r;
  }
}

// Delivery after 1 fetch = effectively seeded; later deliveries land
// mid-run or at the final poll (the join polls once up front, every
// merge_poll_period events, and once before returning).
INSTANTIATE_TEST_SUITE_P(DeliveryTimes, MergeSourceTest,
                         ::testing::Values(1, 2, 3, 5));

TEST(MergeSourceTest, MergeAppliedEvenIfJoinDrainsFirst) {
  // A tiny input drains before the first poll period; the final poll must
  // still apply the merge so reuse never loses pairs.
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"alpha beta"});
  b.AddRow({"alpha beta"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions options;
  options.k = 10;
  options.merge_poll_period = 1 << 30;  // Never polled mid-run.
  DelayedMergeSource merge({{MakePairId(0, 0), 1.0}}, 1);
  TopKJoinStats stats;
  TopKList result =
      RunTopKJoin(view, options, nullptr, nullptr, &merge, &stats);
  EXPECT_TRUE(merge.delivered());
  EXPECT_EQ(result.size(), 1u);
}

TEST(MergeSourceTest, SeedPlusMergePlusExclusion) {
  Rng rng(505);
  auto [a, b] = RandomTables(rng, 50);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  DirectPairScorer scorer(&view, SetMeasure::kJaccard);

  CandidateSet exclude;
  for (RowId i = 0; i < 50; i += 3) exclude.Add(i, i);

  TopKJoinOptions options;
  options.k = 20;
  options.exclude = &exclude;
  options.merge_poll_period = 32;
  TopKList expected = RunTopKJoin(view, options);

  std::vector<ScoredPair> seed, payload;
  for (RowId i = 1; i < 20; i += 2) {
    RowId j = (i + 3) % 50;
    if (view.a(i).empty() || view.b(j).empty()) continue;
    PairId pair = MakePairId(i, j);
    if (exclude.Contains(pair)) continue;
    (i % 4 == 1 ? seed : payload)
        .push_back(ScoredPair{pair, scorer.Score(i, j)});
  }
  DelayedMergeSource merge(payload, 3);
  TopKList got = RunTopKJoin(view, options, nullptr, &seed, &merge, nullptr);
  std::vector<ScoredPair> got_sorted = got.SortedDescending();
  std::vector<ScoredPair> want_sorted = expected.SortedDescending();
  ASSERT_EQ(got_sorted.size(), want_sorted.size());
  for (size_t r = 0; r < got_sorted.size(); ++r) {
    EXPECT_NEAR(got_sorted[r].score, want_sorted[r].score, 1e-12);
    EXPECT_FALSE(exclude.Contains(got_sorted[r].pair));
  }
}

}  // namespace
}  // namespace mc
