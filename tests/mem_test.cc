// Tests for the unified arena memory subsystem (src/mem/): reserve/commit
// arenas with exact MemoryBudget accounting, the `mem/arena_reserve` fault
// point, MC_TOPOLOGY-style topology parsing, placement fallback recording,
// budget conservation across a corpus delta chain, and bit-identity of the
// joint scheduler under forced multi-node topologies (placement moves bytes
// and threads, never results).

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "joint/joint_executor.h"
#include "mem/arena.h"
#include "mem/arena_stats.h"
#include "mem/arena_vector.h"
#include "mem/per_node_replica.h"
#include "mem/topology.h"
#include "ssj/corpus.h"
#include "table/table.h"
#include "table/table_delta.h"
#include "util/fault_injection.h"
#include "util/memory_budget.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mc {
namespace {

using mem::Arena;
using mem::ArenaOptions;
using mem::ArenaStatsRegistry;
using mem::SystemTopology;

// --------------------------------------------------------------------------
// Arena: reserve/commit, reset reuse, exact budget accounting.
// --------------------------------------------------------------------------

TEST(ArenaTest, ReserveCommitResetReuse) {
  Arena arena(ArenaOptions{.chunk_bytes = 4096, .tag = "test"});
  EXPECT_EQ(arena.ReservedBytes(), 0u);
  EXPECT_EQ(arena.UsedBytes(), 0u);

  ASSERT_TRUE(arena.Reserve(1000));
  const size_t reserved = arena.ReservedBytes();
  EXPECT_GE(reserved, 1000u);
  EXPECT_EQ(reserved % 4096, 0u) << "chunks are page-rounded";

  void* first = arena.Allocate(100);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(arena.UsedBytes(), 100u);
  void* second = arena.Allocate(100);
  // The bump pointer aligns each allocation start to the cache line.
  EXPECT_EQ(second, static_cast<std::byte*>(first) + Arena::AlignedSize(100));
  EXPECT_EQ(arena.UsedBytes(), Arena::AlignedSize(100) + 100);
  EXPECT_EQ(arena.ReservedBytes(), reserved) << "no growth within reserve";

  // Reset rewinds the bump pointer but keeps the memory and its charge:
  // the next Allocate hands back the same storage.
  arena.Reset();
  EXPECT_EQ(arena.UsedBytes(), 0u);
  EXPECT_EQ(arena.ReservedBytes(), reserved);
  void* reused = arena.Allocate(100);
  EXPECT_EQ(reused, first);
}

TEST(ArenaTest, ChargesBudgetExactlyWhatItReserves) {
  MemoryBudget budget;
  {
    Arena arena(ArenaOptions{.chunk_bytes = 4096, .budget = &budget});
    ASSERT_TRUE(arena.Reserve(5000));
    EXPECT_EQ(budget.used(), arena.ReservedBytes());

    // Growth through Allocate charges chunk by chunk; the invariant holds
    // at every step, not just at the end.
    for (int i = 0; i < 64; ++i) {
      arena.Allocate(1024);
      EXPECT_EQ(budget.used(), arena.ReservedBytes());
    }
    EXPECT_GT(arena.ReservedBytes(), 5000u) << "growth happened";
  }
  EXPECT_EQ(budget.used(), 0u) << "destruction releases the exact charge";
  EXPECT_EQ(budget.release_violations(), 0u);
}

TEST(ArenaTest, BudgetRefusalLeavesNothingCharged) {
  MemoryBudget budget(/*limit_bytes=*/8192);
  Arena arena(ArenaOptions{.chunk_bytes = 4096, .budget = &budget});
  EXPECT_FALSE(arena.Reserve(1 << 20));
  EXPECT_EQ(arena.ReservedBytes(), 0u);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.rejected(), 1u);

  // A fitting reserve still works after the refusal.
  EXPECT_TRUE(arena.Reserve(100));
  EXPECT_EQ(budget.used(), arena.ReservedBytes());
}

TEST(ArenaTest, AllocateGrowthRefusalThrowsAndConservesBudget) {
  MemoryBudget budget(/*limit_bytes=*/8192);
  Arena arena(ArenaOptions{.chunk_bytes = 4096, .budget = &budget});
  ASSERT_TRUE(arena.Reserve(4096));
  const size_t charged = budget.used();
  arena.Allocate(4096 - Arena::kAlign);
  // The next chunk would blow the limit: Allocate must throw and leave the
  // arena and budget exactly as they were.
  EXPECT_THROW(arena.Allocate(64 << 10), std::bad_alloc);
  EXPECT_EQ(budget.used(), charged);
  EXPECT_EQ(budget.used(), arena.ReservedBytes());
}

TEST(ArenaTest, ReserveFaultPointRefusesWithoutCharging) {
  MemoryBudget budget;
  Arena arena(ArenaOptions{.budget = &budget});
  {
    ScopedFaultArm arm("mem/arena_reserve", FaultKind::kError);
    EXPECT_FALSE(arena.Reserve(4096));
    EXPECT_EQ(budget.used(), 0u);
    EXPECT_EQ(arena.ReservedBytes(), 0u);
  }
  EXPECT_TRUE(arena.Reserve(4096));
  EXPECT_EQ(budget.used(), arena.ReservedBytes());
}

TEST(ArenaTest, ZeroReserveIsFreeAndTrue) {
  MemoryBudget budget;
  Arena arena(ArenaOptions{.budget = &budget});
  EXPECT_TRUE(arena.Reserve(0));
  EXPECT_EQ(arena.ReservedBytes(), 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ArenaVectorTest, ExactSizingLandsInArena) {
  Arena arena(ArenaOptions{.chunk_bytes = 4096});
  ASSERT_TRUE(arena.Reserve(Arena::AlignedSize(100 * sizeof(uint32_t))));
  mem::ArenaVector<uint32_t> values{mem::ArenaAllocator<uint32_t>(&arena)};
  values.reserve(100);
  for (uint32_t i = 0; i < 100; ++i) values.push_back(i);
  EXPECT_GE(arena.UsedBytes(), 100 * sizeof(uint32_t));
  EXPECT_EQ(arena.ReservedBytes(), 4096u) << "no growth past the reserve";
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(values[i], i);
}

// --------------------------------------------------------------------------
// Topology detection and parsing.
// --------------------------------------------------------------------------

TEST(TopologyTest, ParseSpecValid) {
  SystemTopology topo;
  ASSERT_TRUE(SystemTopology::ParseSpec("nodes=2,cores_per_node=4", &topo));
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_TRUE(topo.fake());
  ASSERT_EQ(topo.nodes().size(), 2u);
  EXPECT_EQ(topo.nodes()[0].cpus.size(), 4u);
  EXPECT_EQ(topo.nodes()[1].id, 1);
  EXPECT_EQ(topo.nodes()[1].cpus.front(), 4);
}

TEST(TopologyTest, ParseSpecMalformedLeavesOutputUntouched) {
  for (const char* bad :
       {"", "nodes=0,cores_per_node=4", "nodes=2", "cores_per_node=4",
        "nodes=2,cores_per_node=0", "nodes=-1,cores_per_node=2",
        "nodes=2,cores_per_node=4,bogus=1", "nodes=two,cores_per_node=4",
        "nodes=2;cores_per_node=4", "nodes=2000,cores_per_node=9999"}) {
    SystemTopology topo;  // Default: single node, one CPU.
    EXPECT_FALSE(SystemTopology::ParseSpec(bad, &topo)) << bad;
    EXPECT_EQ(topo.num_nodes(), 1u) << bad;
    EXPECT_FALSE(topo.fake()) << bad;
  }
}

TEST(TopologyTest, NodeOfSlicePartitionsContiguously) {
  SystemTopology topo;
  ASSERT_TRUE(SystemTopology::ParseSpec("nodes=3,cores_per_node=2", &topo));
  size_t previous = 0;
  std::vector<size_t> per_node(3, 0);
  for (size_t i = 0; i < 10; ++i) {
    const size_t node = topo.NodeOfSlice(i, 10);
    ASSERT_LT(node, 3u);
    EXPECT_GE(node, previous) << "monotone block partition";
    previous = node;
    ++per_node[node];
  }
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_GT(per_node[n], 0u) << "every node owns slices";
  }
  // Degenerate inputs stay in range.
  EXPECT_EQ(topo.NodeOfSlice(5, 0), 0u);
  EXPECT_EQ(topo.NodeOfSlice(99, 4), topo.NodeOfSlice(3, 4));
}

TEST(TopologyTest, DetectHonorsEnvOverride) {
  ASSERT_EQ(setenv("MC_TOPOLOGY", "nodes=4,cores_per_node=2", 1), 0);
  SystemTopology detected = SystemTopology::Detect();
  EXPECT_EQ(detected.num_nodes(), 4u);
  EXPECT_TRUE(detected.fake());
  // Malformed overrides fall through to the machine instead of failing.
  ASSERT_EQ(setenv("MC_TOPOLOGY", "nodes=banana", 1), 0);
  SystemTopology fallback = SystemTopology::Detect();
  EXPECT_GE(fallback.num_nodes(), 1u);
  EXPECT_FALSE(fallback.fake());
  ASSERT_EQ(unsetenv("MC_TOPOLOGY"), 0);
}

TEST(ArenaStatsTest, PlacedArenaShowsInPerNodeSnapshotAndFallbacks) {
  auto& registry = ArenaStatsRegistry::Instance();
  registry.ResetFallbacksForTest();
  const size_t base_fallbacks = registry.topology_fallbacks();
  {
    // A node-placed arena without bind (the fake-topology configuration)
    // must record its bytes under the node and count one fallback — the
    // placement was requested but not executed.
    Arena arena(ArenaOptions{
        .chunk_bytes = 4096, .numa_node = 1, .bind = false, .tag = "placed"});
    EXPECT_GT(registry.topology_fallbacks(), base_fallbacks);
    ASSERT_TRUE(arena.Reserve(4096));
    const mem::ArenaStatsSnapshot snapshot = registry.Snapshot();
    bool found = false;
    for (const mem::ArenaNodeStats& node : snapshot.per_node) {
      if (node.node == 1) {
        found = true;
        EXPECT_GE(node.reserved_bytes, 4096u);
        EXPECT_GE(node.arenas, 1u);
      }
    }
    EXPECT_TRUE(found) << "node-1 bytes visible in the snapshot";
    EXPECT_GE(snapshot.total_reserved_bytes, 4096u);
  }
}

TEST(PerNodeReplicaTest, FillAndClampedGet) {
  mem::PerNodeReplica<std::vector<int>> replicas;
  EXPECT_TRUE(replicas.empty());
  replicas.Fill(std::vector<int>{1, 2, 3}, 2);
  EXPECT_FALSE(replicas.empty());
  EXPECT_EQ(replicas.num_replicas(), 2u);
  EXPECT_EQ(replicas.Get(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(replicas.Get(1), (std::vector<int>{1, 2, 3}));
  // Out-of-range nodes clamp instead of crashing (topology changed under a
  // long-lived structure).
  EXPECT_EQ(replicas.Get(7), replicas.Get(1));
}

// --------------------------------------------------------------------------
// ThreadPool topology mode.
// --------------------------------------------------------------------------

TEST(TopologyThreadPoolTest, SubmitOnNodeRunsEverythingUnderFakeTopology) {
  SystemTopology topo;
  ASSERT_TRUE(SystemTopology::ParseSpec("nodes=2,cores_per_node=2", &topo));
  SystemTopology::SetForTest(topo);
  {
    ThreadPool pool(4, ThreadPoolOptions{.name_prefix = "mc-test",
                                         .topology_aware = true});
    EXPECT_TRUE(pool.topology_aware());
    EXPECT_FALSE(pool.pinned()) << "fake topologies never pin";
    EXPECT_EQ(pool.NodeOfWorker(0), 0);
    EXPECT_EQ(pool.NodeOfWorker(3), 1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      pool.SubmitOnNode(i % 2, [&ran] { ++ran; });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), 100);
  }
  SystemTopology::ResetForTest();
}

// --------------------------------------------------------------------------
// Budget conservation across a corpus delta chain: at every generation the
// budget's usage equals the live corpora's reserved bytes, exactly.
// --------------------------------------------------------------------------

Table ThreeColumnTable(Rng& rng, size_t rows) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"desc", AttributeType::kString}});
  Table table(schema);
  auto word = [&](const char* prefix, size_t vocab) {
    return std::string(prefix) + std::to_string(rng.NextZipf(vocab, 0.7));
  };
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({word("n", 30) + " " + word("n", 25), word("c", 10),
                  word("d", 40) + " " + word("d", 40)});
  }
  return table;
}

TEST(BudgetConservationTest, ChargeEqualsReservationAcrossDeltaChain) {
  Rng rng(91);
  Table table_a = ThreeColumnTable(rng, 50);
  Table table_b = ThreeColumnTable(rng, 55);
  const std::vector<size_t> columns = {0, 1, 2};

  MemoryBudget budget;
  CorpusBuildOptions options;
  options.num_threads = 2;
  options.memory_budget = &budget;

  auto base = std::make_unique<SsjCorpus>(
      SsjCorpus::Build(table_a, table_b, columns, options));
  ASSERT_FALSE(base->truncated());
  EXPECT_GT(base->MemoryBytes(), 0u);
  EXPECT_EQ(budget.used(), base->MemoryBytes());

  for (size_t generation = 1; generation <= 4; ++generation) {
    TableDelta delta;
    delta.side = static_cast<uint8_t>(generation % 2);
    Table& target = delta.side == 0 ? table_a : table_b;
    TableDelta::RowEdit edit;
    edit.row = static_cast<uint32_t>(generation % target.num_rows());
    for (size_t c = 0; c < target.num_columns(); ++c) {
      edit.values.emplace_back(target.Value(edit.row, c));
    }
    edit.values[0] += " gen" + std::to_string(generation);
    delta.mutated.push_back(std::move(edit));
    const size_t base_rows = target.num_rows();
    ASSERT_TRUE(ApplyDeltaToTable(target, delta).ok());
    Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
    ASSERT_TRUE(rows.ok());

    std::optional<SsjCorpus> patched = SsjCorpus::ApplyDelta(
        *base, table_a, table_b, columns, *rows, options);
    ASSERT_TRUE(patched.has_value()) << "generation " << generation;
    // Both generations alive: the budget holds exactly their sum.
    EXPECT_EQ(budget.used(), base->MemoryBytes() + patched->MemoryBytes())
        << "generation " << generation;
    base = std::make_unique<SsjCorpus>(*std::move(patched));
    // Old generation released: the charge follows the live set exactly.
    EXPECT_EQ(budget.used(), base->MemoryBytes())
        << "generation " << generation;
  }
  base.reset();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.release_violations(), 0u);
}

TEST(BudgetConservationTest, RefusedDeltaLeavesBudgetAndBaseIntact) {
  Rng rng(92);
  Table table_a = ThreeColumnTable(rng, 40);
  Table table_b = ThreeColumnTable(rng, 40);
  const std::vector<size_t> columns = {0, 1, 2};

  MemoryBudget budget;
  CorpusBuildOptions options;
  options.memory_budget = &budget;
  SsjCorpus base = SsjCorpus::Build(table_a, table_b, columns, options);
  ASSERT_FALSE(base.truncated());
  const size_t charged = budget.used();
  ASSERT_EQ(charged, base.MemoryBytes());

  TableDelta delta;
  delta.side = 0;
  std::vector<std::string> appended;
  for (size_t c = 0; c < table_a.num_columns(); ++c) {
    appended.emplace_back(table_a.Value(0, c));
  }
  delta.appended.push_back(std::move(appended));
  const size_t base_rows = table_a.num_rows();
  ASSERT_TRUE(ApplyDeltaToTable(table_a, delta).ok());
  Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
  ASSERT_TRUE(rows.ok());

  {
    ScopedFaultArm arm("mem/arena_reserve", FaultKind::kError);
    std::optional<SsjCorpus> patched = SsjCorpus::ApplyDelta(
        base, table_a, table_b, columns, *rows, options);
    EXPECT_FALSE(patched.has_value()) << "refused reserve rejects the delta";
  }
  EXPECT_EQ(budget.used(), charged) << "failed patch unwinds its charges";
  EXPECT_EQ(base.MemoryBytes(), charged) << "base generation untouched";
}

// --------------------------------------------------------------------------
// Placement never changes results: the full joint execution is bit-identical
// between the machine's real topology and a forced multi-node topology, with
// and without pinning, at 1 and 4 threads.
// --------------------------------------------------------------------------

void ExpectIdenticalJoint(const JointResult& got, const JointResult& ref,
                          const std::string& label) {
  ASSERT_EQ(got.per_config.size(), ref.per_config.size()) << label;
  for (size_t i = 0; i < got.per_config.size(); ++i) {
    const std::vector<ScoredPair>& g = got.per_config[i].topk;
    const std::vector<ScoredPair>& r = ref.per_config[i].topk;
    ASSERT_EQ(g.size(), r.size()) << label << " node " << i;
    for (size_t j = 0; j < g.size(); ++j) {
      EXPECT_EQ(g[j].pair, r[j].pair) << label << " node " << i << " rank "
                                      << j;
      EXPECT_EQ(g[j].score, r[j].score) << label << " node " << i << " rank "
                                        << j;
    }
  }
}

class TopologyPlacementIdentityTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SystemTopology::ResetForTest();
    unsetenv("MC_PIN_THREADS");
  }
};

TEST_F(TopologyPlacementIdentityTest, PinnedAndUnpinnedMatchAcrossNodes) {
  Rng rng(77);
  Table a = ThreeColumnTable(rng, 60);
  Table b = ThreeColumnTable(rng, 60);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 2};
  attrs.avg_len_b = {2, 1, 2};
  ConfigTree tree = GenerateConfigTree(attrs);

  JointOptions base_options;
  base_options.k = 25;
  base_options.q = 1;
  base_options.scheduler = JointScheduler::kTwoLevel;
  base_options.num_threads = 1;

  // Reference: whatever topology the machine really has, unpinned.
  SystemTopology::ResetForTest();
  JointResult ref = RunJointTopKJoins(corpus, tree, base_options);
  ASSERT_FALSE(ref.truncated);
  ASSERT_GT(ref.per_config[0].topk.size(), 0u);

  for (const char* spec :
       {"nodes=1,cores_per_node=4", "nodes=2,cores_per_node=2",
        "nodes=4,cores_per_node=1"}) {
    SystemTopology topo;
    ASSERT_TRUE(SystemTopology::ParseSpec(spec, &topo));
    for (const bool pin : {false, true}) {
      // MC_PIN_THREADS=1 demands pinning; on the fake topology it degrades
      // to a recorded fallback — either way results must not move.
      setenv("MC_PIN_THREADS", pin ? "1" : "0", 1);
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        SystemTopology::SetForTest(topo);
        JointOptions options = base_options;
        options.num_threads = threads;
        JointResult got = RunJointTopKJoins(corpus, tree, options);
        ASSERT_FALSE(got.truncated);
        ExpectIdenticalJoint(got, ref,
                             std::string(spec) +
                                 " pin=" + std::to_string(pin) +
                                 " threads=" + std::to_string(threads));
        SystemTopology::ResetForTest();
      }
    }
    unsetenv("MC_PIN_THREADS");
  }
}

}  // namespace
}  // namespace mc
