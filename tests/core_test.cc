#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"

namespace mc {
namespace {

// The paper's Figure 1 example, end to end.
Table FigureOneTableA() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"Dave Smith", "Altanta", "18"});
  table.AddRow({"Daniel Smith", "LA", "18"});
  table.AddRow({"Joe Welson", "New York", "25"});
  table.AddRow({"Charles Williams", "Chicago", "45"});
  table.AddRow({"Charlie William", "Atlanta", "28"});
  return table;
}

Table FigureOneTableB() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  Table table(schema);
  table.AddRow({"David Smith", "Atlanta", "18"});
  table.AddRow({"Joe Wilson", "NY", "25"});
  table.AddRow({"Daniel W. Smith", "LA", "30"});
  table.AddRow({"Charles Williams", "Chicago", "45"});
  return table;
}

MatchCatcherOptions SmallOptions() {
  MatchCatcherOptions options;
  options.joint.k = 10;
  options.joint.num_threads = 1;
  options.verifier.pairs_per_iteration = 3;  // n = 3 as in Example 1.1.
  options.verifier.forest.num_trees = 8;
  return options;
}

TEST(DebugSessionTest, FigureOneFindsKilledMatches) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  auto blocker = HashBlocker::AttributeEquivalence(1);  // Q1: city equality.
  CandidateSet c1 = blocker->Run(a, b);

  Result<DebugSession> session =
      DebugSession::Create(a, b, c1, SmallOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // The killed-off true matches (a1,b1) and (a3,b2) must be in E.
  std::vector<PairId> candidates = session->CandidatePairs();
  CandidateSet e;
  for (PairId pair : candidates) e.Add(pair);
  EXPECT_TRUE(e.Contains(0, 0)) << "(a1, b1) missing from E";
  EXPECT_TRUE(e.Contains(2, 1)) << "(a3, b2) missing from E";
  // Pairs surviving the blocker must not appear.
  EXPECT_FALSE(e.Contains(1, 2));
  EXPECT_FALSE(e.Contains(3, 3));
  EXPECT_FALSE(e.Contains(4, 0));

  // The verifier with a gold oracle confirms both killed-off matches.
  CandidateSet gold;
  gold.Add(0, 0);
  gold.Add(2, 1);
  GoldOracle oracle(&gold);
  VerifierResult result = session->RunVerification(oracle);
  EXPECT_TRUE(result.confirmed_matches.Contains(0, 0));
  EXPECT_TRUE(result.confirmed_matches.Contains(2, 1));
}

TEST(DebugSessionTest, FirstIterationSurfacesLikelyMatchesFirst) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  auto blocker = HashBlocker::AttributeEquivalence(1);
  CandidateSet c1 = blocker->Run(a, b);
  Result<DebugSession> session =
      DebugSession::Create(a, b, c1, SmallOptions());
  ASSERT_TRUE(session.ok());
  MatchVerifier verifier = session->MakeVerifier();
  std::vector<PairId> first = verifier.NextBatch();
  ASSERT_EQ(first.size(), 3u);
  // Paper iteration 1 shows (a1,b1), (a3,b2), (a2,b1) — the two true
  // matches must be among the first three shown.
  CandidateSet shown;
  for (PairId pair : first) shown.Add(pair);
  EXPECT_TRUE(shown.Contains(0, 0));
  EXPECT_TRUE(shown.Contains(2, 1));
}

TEST(DebugSessionTest, ConfigTreeAndMetadata) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  CandidateSet c;
  Result<DebugSession> session = DebugSession::Create(a, b, c,
                                                      SmallOptions());
  ASSERT_TRUE(session.ok());
  // Age is numeric -> dropped; name and city remain -> 2*(3)/2 = 3 configs.
  EXPECT_EQ(session->attributes().size(), 2u);
  EXPECT_EQ(session->config_tree().size(), 3u);
  EXPECT_EQ(session->joint_result().per_config.size(), 3u);
  EXPECT_EQ(session->TopKLists().size(), 3u);
  EXPECT_GE(session->topk_seconds(), 0.0);
  EXPECT_GE(session->config_seconds(), 0.0);
}

TEST(DebugSessionTest, ExplainPairFlagsProblems) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  CandidateSet c;
  Result<DebugSession> session = DebugSession::Create(a, b, c,
                                                      SmallOptions());
  ASSERT_TRUE(session.ok());
  // (a1, b1): "Altanta" vs "Atlanta" is a misspelling.
  std::string explanation = session->ExplainPair(MakePairId(0, 0));
  EXPECT_NE(explanation.find("Altanta"), std::string::npos);
  EXPECT_NE(explanation.find("misspelling"), std::string::npos);
  // (a3, b2): "New York" vs "NY" is a variation.
  std::string variation = session->ExplainPair(MakePairId(2, 1));
  EXPECT_NE(variation.find("city"), std::string::npos);
}

TEST(DebugSessionTest, PreCancelledContextFailsCreateWithDeadlineExceeded) {
  Table a = FigureOneTableA();
  Table b = FigureOneTableB();
  auto blocker = HashBlocker::AttributeEquivalence(1);
  CandidateSet c1 = blocker->Run(a, b);

  MatchCatcherOptions options = SmallOptions();
  RunContext context = RunContext::Cancellable();
  context.Cancel();
  options.run_context = context;

  // Cancellation during config generation leaves nothing useful, so Create
  // fails with the typed code instead of returning a degenerate session.
  Result<DebugSession> session = DebugSession::Create(a, b, c1, options);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DebugSessionTest, ErrorsPropagate) {
  // Tables with only a numeric attribute -> no promising attributes.
  Schema schema({{"price", AttributeType::kString}});
  Table a(schema), b(schema);
  for (int i = 0; i < 20; ++i) {
    a.AddRow({std::to_string(i)});
    b.AddRow({std::to_string(i * 2)});
  }
  CandidateSet c;
  Result<DebugSession> session = DebugSession::Create(a, b, c);
  EXPECT_FALSE(session.ok());
}

TEST(DebugSessionTest, EndToEndOnGeneratedRestaurants) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.5));
  // A city-equality blocker (raw values) kills variant/misspelled cities.
  auto blocker = HashBlocker::AttributeEquivalence(
      dataset.table_a.schema().RequireIndexOf("city"));
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);

  MatchCatcherOptions options;
  options.joint.k = 200;
  options.joint.num_threads = 2;
  options.verifier.forest.num_trees = 8;
  Result<DebugSession> session =
      DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  size_t killed = dataset.gold.size() -
                  c.IntersectionSize(dataset.gold);
  ASSERT_GT(killed, 0u) << "blocker should kill some matches";

  // E must contain a decent share of the killed-off matches.
  CandidateSet e;
  for (PairId pair : session->CandidatePairs()) e.Add(pair);
  size_t found_in_e = 0;
  for (PairId pair : dataset.gold) {
    if (!c.Contains(pair) && e.Contains(pair)) ++found_in_e;
  }
  EXPECT_GT(found_in_e, killed / 2)
      << "E recovered " << found_in_e << " of " << killed;

  // And the verifier should confirm a good share of those.
  GoldOracle oracle(&dataset.gold);
  VerifierResult result = session->RunVerification(oracle);
  EXPECT_GT(result.confirmed_matches.size(), found_in_e / 2);
  for (PairId pair : result.confirmed_matches) {
    EXPECT_TRUE(dataset.gold.Contains(pair));
    EXPECT_FALSE(c.Contains(pair));
  }
}

}  // namespace
}  // namespace mc
