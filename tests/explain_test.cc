#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/rule_blocker.h"
#include "blocking/standard_blockers.h"
#include "explain/blame.h"
#include "explain/diagnosis.h"
#include "explain/summary.h"
#include "table/table.h"

namespace mc {
namespace {

std::pair<Table, Table> DiagnosisTables() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"price", AttributeType::kNumeric}});
  Table a(schema), b(schema);
  // Row 0: clean match.
  a.AddRow({"dave smith", "atlanta", "10"});
  b.AddRow({"dave smith", "atlanta", "10"});
  // Row 1: misspelled name.
  a.AddRow({"joe welson", "boston", "10"});
  b.AddRow({"joe wilson", "boston", "10"});
  // Row 2: extra words (subtitle-style).
  a.AddRow({"fast query processing", "denver", "10"});
  b.AddRow({"fast query processing a new approach", "denver", "10"});
  // Row 3: missing city, numeric difference.
  a.AddRow({"anna lee", "", "10"});
  b.AddRow({"anna lee", "chicago", "25"});
  // Row 4: case jumble.
  a.AddRow({"love song", "miami", "10"});
  b.AddRow({"LoVe SONG", "miami", "10"});
  // Row 5: total disagreement.
  a.AddRow({"alpha beta", "seattle", "10"});
  b.AddRow({"gamma delta", "seattle", "10"});
  return {std::move(a), std::move(b)};
}

ProblemKind KindOf(const std::vector<AttributeDiagnosis>& diagnosis,
                   size_t column) {
  for (const AttributeDiagnosis& entry : diagnosis) {
    if (entry.column == column) return entry.kind;
  }
  return ProblemKind::kNone;
}

TEST(DiagnosisTest, ClassifiesProblems) {
  auto [a, b] = DiagnosisTables();
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(0, 0)), 0),
            ProblemKind::kNone);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(1, 1)), 0),
            ProblemKind::kMisspelling);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(2, 2)), 0),
            ProblemKind::kExtraWords);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(3, 3)), 1),
            ProblemKind::kMissingValue);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(3, 3)), 2),
            ProblemKind::kNumericDifference);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(4, 4)), 0),
            ProblemKind::kCaseMismatch);
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(5, 5)), 0),
            ProblemKind::kValueDisagreement);
}

TEST(DiagnosisTest, SignatureListsOnlyProblems) {
  auto [a, b] = DiagnosisTables();
  auto signature = ProblemSignature(DiagnosePair(a, b, MakePairId(3, 3)));
  ASSERT_EQ(signature.size(), 2u);
  EXPECT_EQ(signature[0].first, 1u);  // city missing.
  EXPECT_EQ(signature[1].first, 2u);  // price difference.
  EXPECT_TRUE(ProblemSignature(DiagnosePair(a, b, MakePairId(0, 0))).empty());
}

TEST(DiagnosisTest, RenderMentionsValuesAndProblems) {
  auto [a, b] = DiagnosisTables();
  PairId pair = MakePairId(1, 1);
  std::string text = RenderDiagnosis(a, b, pair, DiagnosePair(a, b, pair));
  EXPECT_NE(text.find("welson"), std::string::npos);
  EXPECT_NE(text.find("wilson"), std::string::npos);
  EXPECT_NE(text.find("misspelling"), std::string::npos);
}

TEST(DiagnosisTest, BothMissingIsNoEvidence) {
  Schema schema({{"x", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({""});
  b.AddRow({""});
  EXPECT_EQ(KindOf(DiagnosePair(a, b, MakePairId(0, 0)), 0),
            ProblemKind::kNone);
}

TEST(SummaryTest, GroupsSortedByPervasiveness) {
  auto [a, b] = DiagnosisTables();
  // Three pairs with a name problem, one with a city problem.
  std::vector<PairId> pairs{MakePairId(1, 1), MakePairId(2, 2),
                            MakePairId(5, 5), MakePairId(3, 3)};
  std::vector<ProblemGroup> groups = SummarizeProblems(a, b, pairs);
  ASSERT_FALSE(groups.empty());
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].count(), groups[i].count());
  }
  // Every group references pairs that actually exhibit it.
  for (const ProblemGroup& group : groups) {
    for (PairId pair : group.pairs) {
      EXPECT_EQ(KindOf(DiagnosePair(a, b, pair), group.column), group.kind);
    }
  }
  std::string rendered = RenderProblemSummary(a, b, groups);
  EXPECT_NE(rendered.find("problem summary"), std::string::npos);
}

TEST(SummaryTest, FindSimilarlyKilledPairs) {
  auto [a, b] = DiagnosisTables();
  std::vector<PairId> pairs{MakePairId(0, 0), MakePairId(1, 1),
                            MakePairId(2, 2), MakePairId(3, 3)};
  // Reference: the misspelled-name pair; only it shares that signature.
  std::vector<PairId> similar =
      FindSimilarlyKilledPairs(a, b, pairs, MakePairId(1, 1));
  ASSERT_EQ(similar.size(), 1u);
  EXPECT_EQ(similar[0], MakePairId(1, 1));
  // Reference: the clean pair matches every no-problem pair.
  std::vector<PairId> clean =
      FindSimilarlyKilledPairs(a, b, pairs, MakePairId(0, 0));
  EXPECT_EQ(clean.size(), 1u);
}

TEST(BlameTest, UnionAndRuleBreakdown) {
  auto [a, b] = DiagnosisTables();
  // Union of city equality and a rule with two conjuncts.
  ConjunctiveRule rule({
      std::make_shared<SetSimilarityPredicate>(0, TokenizerSpec::Word(),
                                               SetMeasure::kJaccard, 0.9),
      std::make_shared<NumericDiffPredicate>(2, 1.0),
  });
  UnionBlocker blocker({
      HashBlocker::AttributeEquivalence(1),
      std::make_shared<RuleBlocker>(std::vector<ConjunctiveRule>{rule}),
  });

  // Pair (3,3): city missing on one side -> hash rejects; rule fails both
  // the price conjunct (10 vs 25). Name matches, so the jaccard conjunct
  // holds.
  std::string report = ExplainKill(blocker, a, b, MakePairId(3, 3));
  EXPECT_NE(report.find("KILLED"), std::string::npos);
  EXPECT_NE(report.find("a.city = b.city rejects"), std::string::npos);
  EXPECT_NE(report.find("absdiff(price) <= 1"), std::string::npos);
  // The satisfied conjunct must NOT be listed among failing ones.
  EXPECT_EQ(report.find("jaccard_word(name) >= 0.9\n"), std::string::npos);

  // A kept pair reports KEPT.
  std::string kept = ExplainKill(blocker, a, b, MakePairId(0, 0));
  EXPECT_NE(kept.find("KEPT"), std::string::npos);
}

TEST(BlameTest, NonDecomposableBlockerSaysSo) {
  auto [a, b] = DiagnosisTables();
  SortedNeighborhoodBlocker blocker(
      KeyFunction(KeyFunction::Kind::kFullValue, 0), 3);
  std::string report = ExplainKill(blocker, a, b, MakePairId(0, 0));
  EXPECT_NE(report.find("not pair-decomposable"), std::string::npos);
}

TEST(KeepsPairTest, AgreesWithRunMembership) {
  auto [a, b] = DiagnosisTables();
  std::vector<std::shared_ptr<const Blocker>> blockers{
      HashBlocker::AttributeEquivalence(1),
      std::make_shared<SimilarityBlocker>(0, TokenizerSpec::Word(),
                                          SetMeasure::kJaccard, 0.5),
      std::make_shared<OverlapBlocker>(0, TokenizerSpec::Word(), 2),
      std::make_shared<EditDistanceBlocker>(
          KeyFunction(KeyFunction::Kind::kLastWord, 0), 1),
      std::make_shared<PhoneticBlocker>(0),
  };
  for (const auto& blocker : blockers) {
    CandidateSet c = blocker->Run(a, b);
    for (size_t ra = 0; ra < a.num_rows(); ++ra) {
      for (size_t rb = 0; rb < b.num_rows(); ++rb) {
        std::optional<bool> keeps = blocker->KeepsPair(a, ra, b, rb);
        ASSERT_TRUE(keeps.has_value());
        EXPECT_EQ(*keeps, c.Contains(static_cast<RowId>(ra),
                                     static_cast<RowId>(rb)))
            << blocker->Description(a.schema()) << " (" << ra << "," << rb
            << ")";
      }
    }
  }
}

}  // namespace
}  // namespace mc
