#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_io.h"
#include "learn/features.h"
#include "table/table.h"
#include "verifier/match_verifier.h"
#include "verifier/user_oracle.h"

namespace mc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SessionIoTest, LabeledPairsRoundTrip) {
  std::vector<std::pair<PairId, bool>> labels{
      {MakePairId(0, 0), true},
      {MakePairId(12, 93), false},
      {MakePairId(4000000, 4000001), true},
  };
  std::string path = TempPath("labels.csv");
  ASSERT_TRUE(SaveLabeledPairs(labels, path).ok());
  Result<std::vector<std::pair<PairId, bool>>> loaded =
      LoadLabeledPairs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, labels);
  std::remove(path.c_str());
}

TEST(SessionIoTest, TopKListsRoundTrip) {
  std::vector<std::vector<ScoredPair>> lists{
      {{MakePairId(1, 2), 0.875}, {MakePairId(3, 4), 1.0 / 3.0}},
      {},
      {{MakePairId(5, 6), 1e-9}},
  };
  std::string path = TempPath("lists.mc");
  ASSERT_TRUE(SaveTopKLists(lists, path).ok());
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ((*loaded)[i].size(), lists[i].size()) << "list " << i;
    for (size_t e = 0; e < lists[i].size(); ++e) {
      EXPECT_EQ((*loaded)[i][e].pair, lists[i][e].pair);
      EXPECT_DOUBLE_EQ((*loaded)[i][e].score, lists[i][e].score);
    }
  }
  std::remove(path.c_str());
}

TEST(SessionIoTest, LoadErrors) {
  EXPECT_FALSE(LoadLabeledPairs("/nonexistent/labels.csv").ok());
  EXPECT_FALSE(LoadTopKLists("/nonexistent/lists.mc").ok());

  std::string path = TempPath("bad.csv");
  ASSERT_TRUE(SaveLabeledPairs({}, path).ok());
  {
    std::ofstream out(path, std::ios::app);
    out << "not,a,valid,line\n";
  }
  EXPECT_FALSE(LoadLabeledPairs(path).ok());
  std::remove(path.c_str());
}

TEST(SessionIoTest, ResumedVerifierContinuesWhereItStopped) {
  // Build a small world; run two iterations; save; resume in a fresh
  // verifier; the resumed verifier must not re-show labeled pairs and must
  // keep the confirmed matches.
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  CandidateSet gold;
  std::vector<ScoredPair> list;
  for (RowId i = 0; i < 40; ++i) {
    a.AddRow({"entity" + std::to_string(i) + " alpha beta"});
    b.AddRow({"entity" + std::to_string(i) + " alpha beta gamma"});
    gold.Add(i, i);
    list.push_back({MakePairId(i, i), 0.9 - 0.01 * i});
    if (i + 1 < 40) {
      list.push_back({MakePairId(i, i + 1), 0.85 - 0.01 * i});
    }
  }
  std::sort(list.begin(), list.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              return x.score > y.score;
            });
  PairFeatureExtractor extractor(&a, &b);
  VerifierOptions options;
  options.pairs_per_iteration = 10;
  options.forest.num_trees = 8;

  MatchVerifier first({list}, &extractor, options);
  GoldOracle oracle(&gold);
  first.RunIterations(oracle, 2);
  size_t confirmed_before = first.confirmed_matches().size();
  ASSERT_GT(confirmed_before, 0u);

  std::string lists_path = TempPath("resume_lists.mc");
  std::string labels_path = TempPath("resume_labels.csv");
  ASSERT_TRUE(SaveTopKLists({list}, lists_path).ok());
  ASSERT_TRUE(SaveLabeledPairs(first.LabeledPairs(), labels_path).ok());

  MatchVerifier resumed(LoadTopKLists(lists_path).value(), &extractor,
                        options);
  resumed.PreloadLabels(LoadLabeledPairs(labels_path).value());
  EXPECT_EQ(resumed.confirmed_matches().size(), confirmed_before);

  CandidateSet already_shown;
  for (const auto& [pair, label] : first.LabeledPairs()) {
    already_shown.Add(pair);
  }
  std::vector<PairId> batch = resumed.NextBatch();
  ASSERT_FALSE(batch.empty());
  for (PairId pair : batch) {
    EXPECT_FALSE(already_shown.Contains(pair))
        << "resumed verifier re-showed a labeled pair";
  }
  std::remove(lists_path.c_str());
  std::remove(labels_path.c_str());
}

}  // namespace
}  // namespace mc
