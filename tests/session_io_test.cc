#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_io.h"
#include "learn/features.h"
#include "table/table.h"
#include "util/fault_injection.h"
#include "verifier/match_verifier.h"
#include "verifier/user_oracle.h"

namespace mc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::vector<std::vector<ScoredPair>> SampleLists() {
  return {
      {{MakePairId(1, 2), 0.875}, {MakePairId(3, 4), 1.0 / 3.0}},
      {},
      {{MakePairId(5, 6), 1e-9}},
  };
}

void ExpectListsEqual(const std::vector<std::vector<ScoredPair>>& got,
                      const std::vector<std::vector<ScoredPair>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "list " << i;
    for (size_t e = 0; e < want[i].size(); ++e) {
      EXPECT_EQ(got[i][e].pair, want[i][e].pair);
      EXPECT_DOUBLE_EQ(got[i][e].score, want[i][e].score);
    }
  }
}

TEST(SessionIoTest, LabeledPairsRoundTrip) {
  std::vector<std::pair<PairId, bool>> labels{
      {MakePairId(0, 0), true},
      {MakePairId(12, 93), false},
      {MakePairId(4000000, 4000001), true},
  };
  std::string path = TempPath("labels.csv");
  ASSERT_TRUE(SaveLabeledPairs(labels, path).ok());
  Result<std::vector<std::pair<PairId, bool>>> loaded =
      LoadLabeledPairs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, labels);
  std::remove(path.c_str());
}

TEST(SessionIoTest, TopKListsRoundTrip) {
  std::vector<std::vector<ScoredPair>> lists{
      {{MakePairId(1, 2), 0.875}, {MakePairId(3, 4), 1.0 / 3.0}},
      {},
      {{MakePairId(5, 6), 1e-9}},
  };
  std::string path = TempPath("lists.mc");
  ASSERT_TRUE(SaveTopKLists(lists, path).ok());
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    ASSERT_EQ((*loaded)[i].size(), lists[i].size()) << "list " << i;
    for (size_t e = 0; e < lists[i].size(); ++e) {
      EXPECT_EQ((*loaded)[i][e].pair, lists[i][e].pair);
      EXPECT_DOUBLE_EQ((*loaded)[i][e].score, lists[i][e].score);
    }
  }
  std::remove(path.c_str());
}

TEST(SessionIoTest, LoadErrors) {
  EXPECT_FALSE(LoadLabeledPairs("/nonexistent/labels.csv").ok());
  EXPECT_FALSE(LoadTopKLists("/nonexistent/lists.mc").ok());

  std::string path = TempPath("bad.csv");
  ASSERT_TRUE(SaveLabeledPairs({}, path).ok());
  {
    std::ofstream out(path, std::ios::app);
    out << "not,a,valid,line\n";
  }
  EXPECT_FALSE(LoadLabeledPairs(path).ok());
  std::remove(path.c_str());
}

TEST(SessionIoRecoveryTest, TruncatedCheckpointIsDetected) {
  std::string path = TempPath("truncated.mc");
  ASSERT_TRUE(SaveTopKLists(SampleLists(), path).ok());
  std::string content = ReadAll(path);
  // Chop the tail off, as a torn write or partial copy would: the CRC
  // footer is lost but the magic header survives.
  WriteAll(path, content.substr(0, content.size() - 20));
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SessionIoRecoveryTest, BitFlippedPayloadFailsChecksum) {
  std::string path = TempPath("bitflip.mc");
  ASSERT_TRUE(SaveTopKLists(SampleLists(), path).ok());
  std::string content = ReadAll(path);
  content[content.size() / 2] ^= 0x04;  // One flipped bit mid-payload.
  WriteAll(path, content);
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SessionIoRecoveryTest, TmpLeftoverFromCrashIsIgnoredAndReclaimed) {
  std::string path = TempPath("leftover.mc");
  std::vector<std::vector<ScoredPair>> lists = SampleLists();
  ASSERT_TRUE(SaveTopKLists(lists, path).ok());
  // Simulate a crash that died after writing half a .tmp: the leftover must
  // not affect loads of the real checkpoint.
  WriteAll(path + ".tmp", "# mc-checkpoint v1\ntopk_lis");
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectListsEqual(*loaded, lists);
  // The next save overwrites the stale .tmp and completes normally.
  ASSERT_TRUE(SaveTopKLists(lists, path).ok());
  EXPECT_TRUE(LoadTopKLists(path).ok());
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

TEST(SessionIoRecoveryTest, LegacyChecksumlessFilesStillLoad) {
  // Files written before the checkpoint framing: no magic, no footer.
  std::string lists_path = TempPath("legacy.mc");
  WriteAll(lists_path,
           "topk_lists 2\n"
           "list 0 1\n"
           "1,2,0.875\n"
           "list 1 0\n");
  Result<std::vector<std::vector<ScoredPair>>> lists =
      LoadTopKLists(lists_path);
  ASSERT_TRUE(lists.ok()) << lists.status().ToString();
  ASSERT_EQ(lists->size(), 2u);
  ASSERT_EQ((*lists)[0].size(), 1u);
  EXPECT_EQ((*lists)[0][0].pair, MakePairId(1, 2));
  EXPECT_DOUBLE_EQ((*lists)[0][0].score, 0.875);

  std::string labels_path = TempPath("legacy_labels.csv");
  WriteAll(labels_path, "a,b,label\n3,4,1\n5,6,0\n");
  Result<std::vector<std::pair<PairId, bool>>> labels =
      LoadLabeledPairs(labels_path);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), 2u);
  EXPECT_EQ((*labels)[0], (std::pair<PairId, bool>{MakePairId(3, 4), true}));
  std::remove(lists_path.c_str());
  std::remove(labels_path.c_str());
}

// The committed fixtures under tests/testdata/ pin the on-disk contract
// against files produced by *old builds*, not by the code under test: a
// framing change that silently broke legacy loads (or stopped detecting
// corruption) would pass the round-trip tests above but fail here.
std::string TestdataPath(const char* name) {
  return std::string(MC_TESTDATA_DIR) + "/" + name;
}

TEST(SessionIoRecoveryTest, CommittedLegacyFixtureLoads) {
  Result<std::vector<std::vector<ScoredPair>>> lists =
      LoadTopKLists(TestdataPath("legacy_lists.mc"));
  ASSERT_TRUE(lists.ok()) << lists.status().ToString();
  ASSERT_EQ(lists->size(), 2u);
  ASSERT_EQ((*lists)[0].size(), 2u);
  EXPECT_EQ((*lists)[0][0].pair, MakePairId(1, 2));
  EXPECT_DOUBLE_EQ((*lists)[0][0].score, 0.75);
  EXPECT_EQ((*lists)[0][1].pair, MakePairId(3, 4));
  ASSERT_EQ((*lists)[1].size(), 1u);
  EXPECT_EQ((*lists)[1][0].pair, MakePairId(5, 6));
  EXPECT_DOUBLE_EQ((*lists)[1][0].score, 0.25);
}

TEST(SessionIoRecoveryTest, CommittedCorruptCrcFixtureIsTypedError) {
  Result<std::vector<std::vector<ScoredPair>>> lists =
      LoadTopKLists(TestdataPath("corrupt_crc_lists.mc"));
  ASSERT_FALSE(lists.ok());
  EXPECT_EQ(lists.status().code(), StatusCode::kIoError);
  EXPECT_NE(lists.status().message().find("checksum"), std::string::npos)
      << lists.status().ToString();
}

TEST(SessionIoRecoveryTest, CommittedTornFixtureIsTypedError) {
  // Framed file whose footer (and trailing newline) was lost mid-write.
  Result<std::vector<std::vector<ScoredPair>>> lists =
      LoadTopKLists(TestdataPath("torn_lists.mc"));
  ASSERT_FALSE(lists.ok());
  EXPECT_EQ(lists.status().code(), StatusCode::kIoError);
  EXPECT_NE(lists.status().message().find("truncated"), std::string::npos)
      << lists.status().ToString();
}

TEST(SessionIoRecoveryTest, InjectedWriteFaultKeepsPreviousCheckpoint) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.Reset();
  std::string path = TempPath("faulted.mc");
  std::vector<std::vector<ScoredPair>> good = SampleLists();
  std::vector<std::vector<ScoredPair>> newer{{{MakePairId(9, 9), 0.5}}};
  ASSERT_TRUE(SaveTopKLists(good, path).ok());

  // IO failure before anything is written.
  registry.ArmNthHit("session_io/write", FaultKind::kError, 1);
  Status failed = SaveTopKLists(newer, path);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // Crash mid-write: torn .tmp left behind, target untouched.
  registry.Reset();
  registry.ArmNthHit("session_io/write", FaultKind::kPartialWrite, 1);
  failed = SaveTopKLists(newer, path);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // Crash between the .tmp write and the rename.
  registry.Reset();
  registry.ArmNthHit("session_io/rename", FaultKind::kError, 1);
  failed = SaveTopKLists(newer, path);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // After every failure mode, the previous checkpoint round-trips intact.
  registry.Reset();
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectListsEqual(*loaded, good);

  // With faults cleared the new save lands.
  ASSERT_TRUE(SaveTopKLists(newer, path).ok());
  loaded = LoadTopKLists(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectListsEqual(*loaded, newer);
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

TEST(SessionIoRecoveryTest, InjectedReadFaultIsTyped) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.Reset();
  std::string path = TempPath("readfault.mc");
  ASSERT_TRUE(SaveTopKLists(SampleLists(), path).ok());
  registry.ArmNthHit("session_io/read", FaultKind::kError, 1);
  Result<std::vector<std::vector<ScoredPair>>> loaded = LoadTopKLists(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  registry.Reset();
  EXPECT_TRUE(LoadTopKLists(path).ok());
  std::remove(path.c_str());
}

TEST(SessionIoTest, ResumedVerifierContinuesWhereItStopped) {
  // Build a small world; run two iterations; save; resume in a fresh
  // verifier; the resumed verifier must not re-show labeled pairs and must
  // keep the confirmed matches.
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  CandidateSet gold;
  std::vector<ScoredPair> list;
  for (RowId i = 0; i < 40; ++i) {
    a.AddRow({"entity" + std::to_string(i) + " alpha beta"});
    b.AddRow({"entity" + std::to_string(i) + " alpha beta gamma"});
    gold.Add(i, i);
    list.push_back({MakePairId(i, i), 0.9 - 0.01 * i});
    if (i + 1 < 40) {
      list.push_back({MakePairId(i, i + 1), 0.85 - 0.01 * i});
    }
  }
  std::sort(list.begin(), list.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              return x.score > y.score;
            });
  PairFeatureExtractor extractor(&a, &b);
  VerifierOptions options;
  options.pairs_per_iteration = 10;
  options.forest.num_trees = 8;

  MatchVerifier first({list}, &extractor, options);
  GoldOracle oracle(&gold);
  first.RunIterations(oracle, 2);
  size_t confirmed_before = first.confirmed_matches().size();
  ASSERT_GT(confirmed_before, 0u);

  std::string lists_path = TempPath("resume_lists.mc");
  std::string labels_path = TempPath("resume_labels.csv");
  ASSERT_TRUE(SaveTopKLists({list}, lists_path).ok());
  ASSERT_TRUE(SaveLabeledPairs(first.LabeledPairs(), labels_path).ok());

  MatchVerifier resumed(LoadTopKLists(lists_path).value(), &extractor,
                        options);
  resumed.PreloadLabels(LoadLabeledPairs(labels_path).value());
  EXPECT_EQ(resumed.confirmed_matches().size(), confirmed_before);

  CandidateSet already_shown;
  for (const auto& [pair, label] : first.LabeledPairs()) {
    already_shown.Add(pair);
  }
  std::vector<PairId> batch = resumed.NextBatch();
  ASSERT_FALSE(batch.empty());
  for (PairId pair : batch) {
    EXPECT_FALSE(already_shown.Contains(pair))
        << "resumed verifier re-showed a labeled pair";
  }
  std::remove(lists_path.c_str());
  std::remove(labels_path.c_str());
}

}  // namespace
}  // namespace mc
