#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/config.h"
#include "config/config_generator.h"
#include "table/profile.h"
#include "table/table.h"

namespace mc {
namespace {

TEST(ConfigMaskTest, Helpers) {
  ConfigMask mask = 0b1011;
  EXPECT_EQ(ConfigSize(mask), 3u);
  EXPECT_TRUE(ConfigContains(mask, 0));
  EXPECT_TRUE(ConfigContains(mask, 1));
  EXPECT_FALSE(ConfigContains(mask, 2));
  EXPECT_TRUE(ConfigContains(mask, 3));
  EXPECT_EQ(ConfigWithout(mask, 1), 0b1001u);
  EXPECT_EQ(ConfigWithout(mask, 2), mask);
}

TEST(ConfigMaskTest, FullMask) {
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  EXPECT_EQ(attrs.FullMask(), 0b111u);
}

TEST(ConfigMaskTest, Description) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"age", AttributeType::kString}});
  PromisingAttributes attrs;
  attrs.columns = {0, 1};
  EXPECT_EQ(attrs.ConfigDescription(0b11, schema), "{name, city}");
  EXPECT_EQ(attrs.ConfigDescription(0b10, schema), "{city}");
}

// Builds a pair of tables with given column contents.
std::pair<Table, Table> MakeTables(const std::vector<Attribute>& attributes,
                                   std::vector<std::vector<std::string>> rows_a,
                                   std::vector<std::vector<std::string>> rows_b) {
  Schema schema(attributes);
  Table a(schema), b(schema);
  for (auto& row : rows_a) a.AddRow(std::move(row));
  for (auto& row : rows_b) b.AddRow(std::move(row));
  return {std::move(a), std::move(b)};
}

TEST(SelectPromisingTest, DropsNumericAndDivergentCategorical) {
  auto [a, b] = MakeTables(
      {{"name", AttributeType::kString},
       {"price", AttributeType::kNumeric},
       {"gender", AttributeType::kCategorical},
       {"city", AttributeType::kString}},
      {{"dave smith", "10", "male", "atlanta"},
       {"joe welson", "20", "female", "ny"}},
      {{"david smith", "11", "m", "atlanta"},
       {"joe wilson", "21", "f", "nyc"}});
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // price dropped (numeric); gender dropped ({male,female} vs {m,f});
  // name and city survive.
  ASSERT_EQ(result->columns.size(), 2u);
  EXPECT_EQ(result->columns[0], 0u);
  EXPECT_EQ(result->columns[1], 3u);
}

TEST(SelectPromisingTest, KeepsAgreeingCategorical) {
  auto [a, b] = MakeTables(
      {{"name", AttributeType::kString},
       {"state", AttributeType::kCategorical}},
      {{"x", "wi"}, {"y", "ca"}, {"z", "wi"}},
      {{"p", "wi"}, {"q", "ca"}});
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 2u);
}

TEST(SelectPromisingTest, FailsWhenNothingSurvives) {
  auto [a, b] = MakeTables({{"price", AttributeType::kNumeric}},
                           {{"10"}}, {{"20"}});
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SelectPromisingTest, RejectsMismatchedSchemas) {
  Table a(Schema({{"x", AttributeType::kString}}));
  Table b(Schema({{"y", AttributeType::kString}}));
  Result<PromisingAttributes> result = SelectPromisingAttributes(a, b);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectPromisingTest, CapsAttributeCount) {
  std::vector<Attribute> attributes;
  std::vector<std::string> row;
  for (int i = 0; i < 20; ++i) {
    attributes.push_back({"attr" + std::to_string(i), AttributeType::kString});
    row.push_back("value" + std::to_string(i));
  }
  auto [a, b] = MakeTables(attributes, {row, row}, {row});
  ConfigGeneratorOptions options;
  options.max_attributes = 6;
  Result<PromisingAttributes> result =
      SelectPromisingAttributes(a, b, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns.size(), 6u);
  EXPECT_TRUE(std::is_sorted(result->columns.begin(), result->columns.end()));
}

PromisingAttributes FourAttributes(std::vector<double> e_scores,
                                   std::vector<double> avg_a,
                                   std::vector<double> avg_b) {
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2, 3};
  attrs.e_scores = std::move(e_scores);
  attrs.avg_len_a = std::move(avg_a);
  attrs.avg_len_b = std::move(avg_b);
  return attrs;
}

TEST(ConfigTreeTest, SizeFollowsTriangularFormula) {
  // Paper §3.2: |T|(|T|+1)/2 configs of sizes |T|, |T|-1, ..., 1.
  for (size_t n = 1; n <= 6; ++n) {
    PromisingAttributes attrs;
    for (size_t i = 0; i < n; ++i) {
      attrs.columns.push_back(i);
      attrs.e_scores.push_back(1.0 / (1.0 + i));
      attrs.avg_len_a.push_back(2.0);
      attrs.avg_len_b.push_back(2.0);
    }
    ConfigTree tree = GenerateConfigTree(attrs);
    EXPECT_EQ(tree.size(), n * (n + 1) / 2) << "n=" << n;
  }
}

TEST(ConfigTreeTest, PaperFigureThreeDefaultShape) {
  // Figure 3.a: T = {n, c, s, d}, e(n) > e(d) > e(c) > e(s); all short.
  // Bits: n=0, c=1, s=2, d=3.
  PromisingAttributes attrs = FourAttributes(
      /*e_scores=*/{0.9, 0.5, 0.3, 0.7},
      /*avg_a=*/{2, 1, 1, 2}, /*avg_b=*/{2, 1, 1, 2});
  ConfigGeneratorOptions options;
  options.handle_long_attributes = false;
  ConfigTree tree = GenerateConfigTree(attrs, options);
  ASSERT_EQ(tree.size(), 10u);
  // Root ncsd.
  EXPECT_EQ(tree.nodes[0].mask, 0b1111u);
  EXPECT_EQ(tree.nodes[0].parent, -1);
  // Level 2: csd, nsd, ncd, ncs (in bit-removal order: without n, c, s, d).
  EXPECT_EQ(tree.nodes[1].mask, 0b1110u);  // csd.
  EXPECT_EQ(tree.nodes[2].mask, 0b1101u);  // nsd.
  EXPECT_EQ(tree.nodes[3].mask, 0b1011u);  // ncd.
  EXPECT_EQ(tree.nodes[4].mask, 0b0111u);  // ncs.
  // Expansion excludes s (lowest e-score) -> ncd expanded:
  // children cd, nd, nc.
  EXPECT_EQ(tree.nodes[5].mask, 0b1010u);  // cd.
  EXPECT_EQ(tree.nodes[6].mask, 0b1001u);  // nd.
  EXPECT_EQ(tree.nodes[7].mask, 0b0011u);  // nc.
  EXPECT_EQ(tree.nodes[5].parent, 3);
  // Next exclusion: c -> nd expanded: children d, n.
  EXPECT_EQ(tree.nodes[8].mask, 0b1000u);  // d.
  EXPECT_EQ(tree.nodes[9].mask, 0b0001u);  // n.
  EXPECT_EQ(tree.nodes[8].parent, 6);
}

TEST(ConfigTreeTest, PaperFigureThreeLongAttributeShape) {
  // Figure 3.b: d is long (dominates the concatenation), so the level-2
  // expansion picks ncs instead of ncd, producing cs, ns, nc, then c, n.
  PromisingAttributes attrs = FourAttributes(
      /*e_scores=*/{0.9, 0.5, 0.3, 0.7},
      /*avg_a=*/{3, 2, 2, 60}, /*avg_b=*/{3, 2, 2, 60});
  ConfigGeneratorOptions options;
  options.handle_long_attributes = true;
  ConfigTree tree = GenerateConfigTree(attrs, options);
  ASSERT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.nodes[4].mask, 0b0111u);  // ncs.
  // ncs must be the expanded node: its children are cs, ns, nc.
  EXPECT_EQ(tree.nodes[5].mask, 0b0110u);  // cs.
  EXPECT_EQ(tree.nodes[6].mask, 0b0101u);  // ns.
  EXPECT_EQ(tree.nodes[7].mask, 0b0011u);  // nc.
  EXPECT_EQ(tree.nodes[5].parent, 4);
  // No long attribute below; expansion excludes s -> nc expanded: c, n.
  EXPECT_EQ(tree.nodes[8].mask, 0b0010u);  // c.
  EXPECT_EQ(tree.nodes[9].mask, 0b0001u);  // n.
}

TEST(FindLongAttrTest, DetectsDominantAttribute) {
  PromisingAttributes attrs = FourAttributes(
      {0.9, 0.5, 0.3, 0.7}, {3, 2, 2, 60}, {3, 2, 2, 60});
  // Default expansion candidate at level 2 is ncd (drop s, bit 2).
  int long_bit = FindLongAttr(0b1011, attrs, 0.2);
  EXPECT_EQ(long_bit, 3);  // d.
}

TEST(FindLongAttrTest, NoLongAttributeForBalancedLengths) {
  PromisingAttributes attrs = FourAttributes(
      {0.9, 0.5, 0.3, 0.7}, {2, 2, 2, 2}, {2, 2, 2, 2});
  EXPECT_EQ(FindLongAttr(0b1011, attrs, 0.2), -1);
}

TEST(FindLongAttrTest, SingletonConfigHasNoLongAttribute) {
  PromisingAttributes attrs = FourAttributes(
      {0.9, 0.5, 0.3, 0.7}, {2, 2, 2, 50}, {2, 2, 2, 50});
  EXPECT_EQ(FindLongAttr(0b1000, attrs, 0.2), -1);
}

TEST(ConfigTreeTest, AllConfigsDistinct) {
  PromisingAttributes attrs = FourAttributes(
      {0.9, 0.5, 0.3, 0.7}, {3, 2, 2, 60}, {3, 2, 2, 60});
  ConfigTree tree = GenerateConfigTree(attrs);
  std::vector<ConfigMask> masks;
  for (const ConfigNode& node : tree.nodes) masks.push_back(node.mask);
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(std::unique(masks.begin(), masks.end()), masks.end());
}

TEST(ConfigTreeTest, ChildMasksAreSubsetsOfParent) {
  PromisingAttributes attrs = FourAttributes(
      {0.9, 0.5, 0.3, 0.7}, {3, 2, 2, 10}, {3, 2, 2, 12});
  ConfigTree tree = GenerateConfigTree(attrs);
  for (const ConfigNode& node : tree.nodes) {
    if (node.parent < 0) continue;
    ConfigMask parent_mask = tree.nodes[node.parent].mask;
    EXPECT_EQ(node.mask & parent_mask, node.mask);
    EXPECT_EQ(ConfigSize(node.mask) + 1, ConfigSize(parent_mask));
  }
}

TEST(ConfigTreeTest, SingleAttribute) {
  PromisingAttributes attrs;
  attrs.columns = {0};
  attrs.e_scores = {1.0};
  attrs.avg_len_a = {2.0};
  attrs.avg_len_b = {2.0};
  ConfigTree tree = GenerateConfigTree(attrs);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.nodes[0].mask, 0b1u);
}

}  // namespace
}  // namespace mc
