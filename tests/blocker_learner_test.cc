#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocker_learner.h"
#include "blocking/metrics.h"
#include "datagen/generator.h"
#include "util/random.h"

namespace mc {
namespace {

std::vector<std::pair<PairId, bool>> MakeSample(
    const datagen::GeneratedDataset& dataset, size_t positives,
    size_t negatives, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<PairId, bool>> sample;
  std::vector<PairId> gold = dataset.gold.SortedPairs();
  rng.Shuffle(gold);
  for (size_t i = 0; i < positives && i < gold.size(); ++i) {
    sample.emplace_back(gold[i], true);
  }
  while (sample.size() < positives + negatives) {
    PairId pair = MakePairId(
        static_cast<RowId>(rng.NextBelow(dataset.table_a.num_rows())),
        static_cast<RowId>(rng.NextBelow(dataset.table_b.num_rows())));
    if (dataset.gold.Contains(pair)) continue;
    sample.emplace_back(pair, false);
  }
  return sample;
}

TEST(BlockerLearnerTest, LearnsSelectiveHighRecallBlocker) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats();
  auto sample = MakeSample(dataset, 60, 300, 11);
  BlockerLearnerOptions options;
  options.max_rule_negative_rate = 0.05;
  Result<LearnedBlocker> learned =
      LearnBlocker(dataset.table_a, dataset.table_b, sample, options);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_GE(learned->sample_recall, 0.9);
  EXPECT_LE(learned->sample_negative_rate, 0.3);

  // The learned blocker must generalize: decent true recall, far more
  // selective than the cross product.
  CandidateSet c = learned->blocker->Run(dataset.table_a, dataset.table_b);
  BlockerMetrics metrics =
      EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());
  EXPECT_GE(metrics.recall, 0.7);
  EXPECT_LE(metrics.selectivity, 0.3);
}

TEST(BlockerLearnerTest, SampleRecallUsuallyOverstatesTrueRecall) {
  // The §6.2 premise: blockers learned on samples look better on the
  // sample than on the full tables (sampling flukes). We only require that
  // the learner reports a consistent pair of numbers.
  datagen::GeneratedDataset dataset = datagen::GenerateAcmDblp(
      datagen::ScaleDims(datagen::kDimsAcmDblp, 0.3));
  auto sample = MakeSample(dataset, 80, 400, 13);
  Result<LearnedBlocker> learned =
      LearnBlocker(dataset.table_a, dataset.table_b, sample);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_GT(learned->sample_recall, 0.0);
  EXPECT_LE(learned->sample_recall, 1.0);
  EXPECT_FALSE(learned->blocker->rules().empty());
  EXPECT_LE(learned->blocker->rules().size(), 5u);
}

TEST(BlockerLearnerTest, ErrorsOnDegenerateSamples) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.2));
  EXPECT_FALSE(LearnBlocker(dataset.table_a, dataset.table_b, {}).ok());
  std::vector<std::pair<PairId, bool>> negatives_only{
      {MakePairId(0, 0), false}, {MakePairId(1, 1), false}};
  EXPECT_FALSE(
      LearnBlocker(dataset.table_a, dataset.table_b, negatives_only).ok());
}

TEST(BlockerLearnerTest, RespectsRuleBudget) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats();
  auto sample = MakeSample(dataset, 60, 200, 17);
  BlockerLearnerOptions options;
  options.max_rules = 2;
  options.max_conjuncts = 1;
  Result<LearnedBlocker> learned =
      LearnBlocker(dataset.table_a, dataset.table_b, sample, options);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();
  EXPECT_LE(learned->blocker->rules().size(), 2u);
  for (const ConjunctiveRule& rule : learned->blocker->rules()) {
    EXPECT_EQ(rule.predicates().size(), 1u);
  }
}

}  // namespace
}  // namespace mc
