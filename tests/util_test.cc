#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/memory_budget.h"
#include "util/random.h"
#include "util/run_context.h"
#include "util/sharded_insert_map.h"
#include "util/status.h"
#include "util/thread_name.h"
#include "util/thread_pool.h"

namespace mc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Status ReturnIfErrorHelper(const Status& status, bool* reached_end) {
  MC_RETURN_IF_ERROR(status);
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesAndPassesThrough) {
  bool reached_end = false;
  Status bad = ReturnIfErrorHelper(Status::IoError("disk gone"), &reached_end);
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
  EXPECT_FALSE(reached_end);

  Status good = ReturnIfErrorHelper(Status::Ok(), &reached_end);
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(reached_end);
}

Result<int> AssignOrReturnHelper(Result<int> input) {
  MC_ASSIGN_OR_RETURN(int value, input);
  MC_ASSIGN_OR_RETURN(auto doubled, Result<int>(value * 2));
  return doubled;
}

TEST(StatusMacroTest, AssignOrReturnUnpacksValue) {
  Result<int> result = AssignOrReturnHelper(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusMacroTest, AssignOrReturnPropagatesError) {
  Result<int> result = AssignOrReturnHelper(Status::NotFound("no value"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no value");
}

Result<std::unique_ptr<int>> AssignOrReturnMoveOnlyHelper() {
  MC_ASSIGN_OR_RETURN(
      std::unique_ptr<int> owned,
      Result<std::unique_ptr<int>>(std::make_unique<int>(7)));
  return owned;
}

TEST(StatusMacroTest, AssignOrReturnMovesMoveOnlyValues) {
  Result<std::unique_ptr<int>> result = AssignOrReturnMoveOnlyHelper();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 7);
}

TEST(Crc32Test, KnownAnswers) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalChainingMatchesOneShot) {
  const std::string data = "topk_lists 3\nlist 0 2\n1,2,0.5\n";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t chained = Crc32(data.substr(0, split));
    chained = Crc32(data.substr(split), chained);
    EXPECT_EQ(chained, Crc32(data)) << "split " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "list 0 10";
  uint32_t clean = Crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32(data), clean);
}

TEST(RunContextTest, InertContextNeverCancels) {
  RunContext context;
  EXPECT_FALSE(context.can_cancel());
  EXPECT_FALSE(context.Cancelled());
  context.Cancel();  // No-op on an inert context.
  EXPECT_FALSE(context.Cancelled());
  EXPECT_EQ(context.RemainingMillis(),
            std::numeric_limits<int64_t>::max());
}

TEST(RunContextTest, CancelIsSharedAcrossCopies) {
  RunContext context = RunContext::Cancellable();
  RunContext copy = context;
  EXPECT_FALSE(copy.Cancelled());
  context.Cancel();
  EXPECT_TRUE(copy.Cancelled());
  EXPECT_EQ(copy.RemainingMillis(), 0);
}

TEST(RunContextTest, DeadlineExpires) {
  RunContext immediate = RunContext::WithDeadline(0);
  EXPECT_TRUE(immediate.Cancelled());

  RunContext future = RunContext::WithDeadline(60000);
  EXPECT_FALSE(future.Cancelled());
  EXPECT_GT(future.RemainingMillis(), 0);
  EXPECT_LE(future.RemainingMillis(), 60000);
  future.Cancel();  // Manual cancel beats the deadline.
  EXPECT_TRUE(future.Cancelled());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  size_t low = 0;
  const size_t n = 1000;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    size_t r = rng.NextZipf(n, 1.0);
    ASSERT_LT(r, n);
    if (r < n / 10) ++low;
  }
  // With skew 1.0 the first decile should hold far more than 10% of mass.
  EXPECT_GT(low, static_cast<size_t>(draws / 4));
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng rng(19);
  size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextZipf(100, 0.0) < 10) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low), 1000.0, 250.0);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesStatusAndKeepsWorkersAlive) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Submit([] { throw std::runtime_error("task exploded"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  Status status = pool.Wait();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task exploded"), std::string::npos);
  // Every non-throwing task still ran: no worker died.
  EXPECT_EQ(counter.load(), 20);

  // The pool stays usable and the error does not leak into the next round.
  pool.Submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, FirstErrorWinsAndErrorCountAccumulates) {
  ThreadPool pool(1);  // Single worker: deterministic task order.
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  pool.Submit([] { throw 42; });  // Non-std exception.
  Status status = pool.Wait();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("first"), std::string::npos);
  EXPECT_EQ(pool.error_count(), 0u);  // Cleared by Wait().
}

TEST(ThreadPoolTest, ErrorSinkReceivesFailureInsteadOfWait) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::vector<Status> sunk;
  auto sink = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mutex);
    sunk.push_back(status);
  };
  pool.Submit([] { throw std::runtime_error("sinked failure"); }, sink);
  pool.Submit([] {}, sink);  // Sink not invoked for successful tasks.
  Status status = pool.Wait();
  EXPECT_TRUE(status.ok()) << "sinked errors must not reach Wait()";
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].code(), StatusCode::kInternal);
  EXPECT_NE(sunk[0].message().find("sinked failure"), std::string::npos);
}

// Death tests interact badly with sanitizer runtimes (the forked child
// reports the intentional fault as a sanitizer error), so the shutdown
// guard is pinned in plain builds only.
#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
TEST(ThreadPoolDeathTest, SubmitDuringShutdownDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_DEATH(
      {
        // Destroy the pool in place, then submit: the lifecycle contract
        // (thread_pool.h) makes this a fatal programming error rather than
        // a silent drop.
        alignas(ThreadPool) unsigned char storage[sizeof(ThreadPool)];
        ThreadPool* pool = new (storage) ThreadPool(1);
        pool->~ThreadPool();
        pool->Submit([] {});
      },
      "Submit");
}
#endif

TEST(FaultRegistryTest, DisarmedPointsReportNone) {
  FaultRegistry::Instance().Reset();
  EXPECT_EQ(MC_FAULT_POINT("util_test/none"), FaultKind::kNone);
  // Disarmed fast path does not count hits.
  EXPECT_EQ(FaultRegistry::Instance().HitCount("util_test/none"), 0u);
}

TEST(FaultRegistryTest, NthHitFiresExactlyOnce) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.Reset();
  registry.ArmNthHit("util_test/nth", FaultKind::kError, 3);
  EXPECT_EQ(MC_FAULT_POINT("util_test/nth"), FaultKind::kNone);
  EXPECT_EQ(MC_FAULT_POINT("util_test/nth"), FaultKind::kNone);
  EXPECT_EQ(MC_FAULT_POINT("util_test/nth"), FaultKind::kError);
  EXPECT_EQ(MC_FAULT_POINT("util_test/nth"), FaultKind::kNone);
  EXPECT_EQ(registry.HitCount("util_test/nth"), 4u);
  registry.Reset();
  EXPECT_EQ(registry.HitCount("util_test/nth"), 0u);
}

TEST(FaultRegistryTest, EveryHitFiresUntilReset) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.Reset();
  registry.ArmEveryHit("util_test/every", FaultKind::kThrow);
  EXPECT_EQ(MC_FAULT_POINT("util_test/every"), FaultKind::kThrow);
  EXPECT_EQ(MC_FAULT_POINT("util_test/every"), FaultKind::kThrow);
  // Other points stay disarmed.
  EXPECT_EQ(MC_FAULT_POINT("util_test/other"), FaultKind::kNone);
  registry.Reset();
  EXPECT_EQ(MC_FAULT_POINT("util_test/every"), FaultKind::kNone);
}

TEST(FaultRegistryTest, ProbabilityIsSeededAndDeterministic) {
  FaultRegistry& registry = FaultRegistry::Instance();
  auto draw_sequence = [&](uint64_t seed) {
    registry.Reset();
    registry.ArmWithProbability("util_test/prob", FaultKind::kError, 0.5,
                                seed);
    std::vector<FaultKind> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(MC_FAULT_POINT("util_test/prob"));
    }
    return fired;
  };
  std::vector<FaultKind> first = draw_sequence(1234);
  std::vector<FaultKind> second = draw_sequence(1234);
  EXPECT_EQ(first, second);  // Same seed, same faults.
  size_t fired = 0;
  for (FaultKind kind : first) fired += (kind == FaultKind::kError);
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
  registry.Reset();
}

TEST(ScopedFaultArmTest, DisarmsOnScopeExitOnly) {
  FaultRegistry::Instance().Reset();
  {
    ScopedFaultArm fault("util_test/scoped", FaultKind::kError);
    EXPECT_EQ(MC_FAULT_POINT("util_test/scoped"), FaultKind::kError);
    EXPECT_EQ(fault.HitCount(), 1u);
  }
  EXPECT_EQ(MC_FAULT_POINT("util_test/scoped"), FaultKind::kNone);
}

TEST(ScopedFaultArmTest, DisarmLeavesOtherPointsArmed) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.Reset();
  ScopedFaultArm outer("util_test/outer", FaultKind::kError);
  {
    ScopedFaultArm inner("util_test/inner", FaultKind::kThrow);
    EXPECT_EQ(MC_FAULT_POINT("util_test/inner"), FaultKind::kThrow);
  }
  // The inner guard's destructor disarmed its own point, not the outer's.
  EXPECT_EQ(MC_FAULT_POINT("util_test/inner"), FaultKind::kNone);
  EXPECT_EQ(MC_FAULT_POINT("util_test/outer"), FaultKind::kError);
}

TEST(ScopedFaultArmTest, MoveTransfersOwnership) {
  FaultRegistry::Instance().Reset();
  {
    ScopedFaultArm original("util_test/moved", FaultKind::kError, size_t{2});
    ScopedFaultArm stolen = std::move(original);
    // The moved-from guard's destructor must not disarm the point...
    { ScopedFaultArm graveyard = std::move(original); }
    EXPECT_EQ(MC_FAULT_POINT("util_test/moved"), FaultKind::kNone);  // hit 1
    EXPECT_EQ(MC_FAULT_POINT("util_test/moved"), FaultKind::kError);  // hit 2
    EXPECT_EQ(stolen.HitCount(), 2u);
  }  // ...while the stealing guard's destructor does.
  EXPECT_EQ(MC_FAULT_POINT("util_test/moved"), FaultKind::kNone);
  EXPECT_EQ(FaultRegistry::Instance().HitCount("util_test/moved"), 0u);
}

TEST(RunContextTest, ParentCancelPropagatesToChild) {
  RunContext parent = RunContext::Cancellable();
  RunContext child = RunContext::WithParent(parent);
  RunContext grandchild = RunContext::WithParent(child);
  EXPECT_FALSE(grandchild.Cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.Cancelled());
  EXPECT_TRUE(grandchild.Cancelled());
}

TEST(RunContextTest, ChildCancelDoesNotAffectParentOrSibling) {
  RunContext parent = RunContext::Cancellable();
  RunContext child = RunContext::WithParent(parent);
  RunContext sibling = RunContext::WithParent(parent);
  child.Cancel();
  EXPECT_TRUE(child.Cancelled());
  EXPECT_FALSE(parent.Cancelled());
  EXPECT_FALSE(sibling.Cancelled());
}

TEST(RunContextTest, ChildDeadlineTightensButNeverLoosens) {
  RunContext parent = RunContext::WithDeadline(10'000);
  // A looser child deadline is clamped to the parent's.
  RunContext loose = RunContext::WithParent(parent, 60'000);
  EXPECT_LE(loose.RemainingMillis(), 10'000);
  // A tighter one sticks.
  RunContext tight = RunContext::WithParent(parent, 5);
  EXPECT_LE(tight.RemainingMillis(), 5);
  // No own deadline: inherits the parent's.
  RunContext inherit = RunContext::WithParent(parent);
  EXPECT_LE(inherit.RemainingMillis(), 10'000);
  EXPECT_LT(inherit.RemainingMillis(),
            std::numeric_limits<int64_t>::max());
}

TEST(RunContextTest, ChildOfInertParentIsIndependentlyCancellable) {
  RunContext child = RunContext::WithParent(RunContext());
  EXPECT_TRUE(child.can_cancel());
  EXPECT_FALSE(child.Cancelled());
  child.Cancel();
  EXPECT_TRUE(child.Cancelled());
}

TEST(ThreadNameTest, PoolWorkersCarryThePoolName) {
  ThreadPool pool(2, "mc-utest");
  std::mutex mutex;
  std::set<std::string> names;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      std::string name = CurrentThreadName();
      std::lock_guard<std::mutex> lock(mutex);
      names.insert(name);
    });
  }
  pool.Wait();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("mc-utest-", 0), 0u) << "worker named " << name;
  }
}

TEST(ThreadNameTest, LongNamesTruncateToPlatformLimit) {
  const std::string before = CurrentThreadName();
  SetCurrentThreadName("mc-a-name-far-beyond-the-linux-limit");
  const std::string name = CurrentThreadName();
#if defined(__linux__)
  EXPECT_EQ(name, "mc-a-name-far-b");  // 15 chars + NUL.
#endif
  SetCurrentThreadName(before.empty() ? "mc_tests" : before);
}

TEST(MemoryBudgetTest, ChargesReleasesAndRejects) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_EQ(budget.remaining(), 40u);
  EXPECT_FALSE(budget.TryCharge(41));  // Would cross the limit.
  EXPECT_EQ(budget.rejected(), 1u);
  EXPECT_TRUE(budget.TryCharge(40));
  EXPECT_EQ(budget.used(), 100u);
  budget.Release(60);
  EXPECT_EQ(budget.used(), 40u);
  EXPECT_EQ(budget.peak(), 100u);  // Peak survives releases.
  budget.set_tolerate_release_violations(true);  // Deliberate below.
  budget.Release(1'000'000);  // Over-release clamps at zero.
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.release_violations(), 1u);
}

TEST(MemoryBudgetTest, OverReleaseClampsCountsAndKeepsAccounting) {
  MemoryBudget budget(1000);
  budget.set_tolerate_release_violations(true);
  ASSERT_TRUE(budget.TryCharge(300));
  // The historical bug: releasing more than `used` wrapped the unsigned
  // counter to ~SIZE_MAX, so every later TryCharge "fit" and the ceiling
  // stopped existing. Now the release clamps at zero and is counted.
  budget.Release(500);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.release_violations(), 1u);
  EXPECT_EQ(budget.remaining(), 1000u);  // Not SIZE_MAX - wrap.
  // Accounting still works after the clamp: the ceiling holds.
  EXPECT_TRUE(budget.TryCharge(1000));
  EXPECT_FALSE(budget.TryCharge(1));
  EXPECT_EQ(budget.rejected(), 1u);
  budget.Release(1000);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.release_violations(), 1u);  // Exact release: no count.
}

TEST(MemoryBudgetTest, UnlimitedBudgetAcceptsEverything) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryCharge(std::numeric_limits<size_t>::max() / 2));
  EXPECT_EQ(budget.rejected(), 0u);
  EXPECT_EQ(budget.remaining(), std::numeric_limits<size_t>::max());
}

TEST(MemoryBudgetTest, ReservationIsRaiiAndMovable) {
  MemoryBudget budget(100);
  {
    MemoryReservation reservation;
    EXPECT_TRUE(reservation.Acquire(&budget, 80));
    EXPECT_EQ(budget.used(), 80u);
    // Re-acquiring releases the previous charge first.
    EXPECT_TRUE(reservation.Acquire(&budget, 30));
    EXPECT_EQ(budget.used(), 30u);
    EXPECT_FALSE(reservation.Acquire(&budget, 200));
    EXPECT_EQ(budget.used(), 0u);  // Failed acquire holds nothing.
    EXPECT_TRUE(reservation.Acquire(&budget, 50));
    MemoryReservation moved = std::move(reservation);
    EXPECT_EQ(budget.used(), 50u);  // Move transfers, not double-charges.
  }
  EXPECT_EQ(budget.used(), 0u);  // Destructor released.
  // A null budget always succeeds and holds nothing.
  MemoryReservation free_reservation;
  EXPECT_TRUE(free_reservation.Acquire(nullptr, 1'000'000));
}

TEST(ShardedInsertMapTest, InsertAndFind) {
  ShardedInsertMap<uint64_t, int> map;
  auto [value, inserted] = map.Insert(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, 50);
  auto [value2, inserted2] = map.Insert(5, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*value2, 50);  // First insert wins; values are immutable.
  EXPECT_EQ(value, value2);
  EXPECT_EQ(map.Find(5), value);
  EXPECT_EQ(map.Find(6), nullptr);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(ShardedInsertMapTest, InsertWithOnlyInvokesFactoryOnInsert) {
  ShardedInsertMap<int, int> map;
  int calls = 0;
  map.InsertWith(1, [&] {
    ++calls;
    return 10;
  });
  map.InsertWith(1, [&] {
    ++calls;
    return 20;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(*map.Find(1), 10);
}

TEST(ShardedInsertMapTest, PointerStableAcrossInserts) {
  ShardedInsertMap<int, int> map(4);
  const int* first = map.Insert(0, 0).first;
  for (int i = 1; i < 10000; ++i) map.Insert(i, i);
  EXPECT_EQ(*first, 0);
  EXPECT_EQ(map.Find(0), first);
  EXPECT_EQ(map.Size(), 10000u);
}

TEST(ShardedInsertMapTest, ConcurrentInsertStress) {
  ShardedInsertMap<uint64_t, uint64_t> map;
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 5000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> wins{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &wins, t] {
      for (uint64_t k = 0; k < kKeys; ++k) {
        auto [value, inserted] = map.Insert(k, static_cast<uint64_t>(t));
        if (inserted) wins.fetch_add(1);
        // Whatever thread won, the stored value must be one of the writers'.
        EXPECT_LT(*value, static_cast<uint64_t>(kThreads));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(map.Size(), kKeys);
  EXPECT_EQ(wins.load(), kKeys);  // Exactly one insert per key succeeded.
}

TEST(ShardedInsertMapTest, ForEachVisitsAll) {
  ShardedInsertMap<int, int> map(8);
  for (int i = 0; i < 100; ++i) map.Insert(i, i * i);
  int count = 0;
  long sum = 0;
  map.ForEach([&](int key, int value) {
    ++count;
    sum += value - key * key;
  });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sum, 0);
}

}  // namespace
}  // namespace mc
