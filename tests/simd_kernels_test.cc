#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "simd/kernels.h"
#include "simd/kernels_impl.h"
#include "text/similarity.h"
#include "util/random.h"

namespace mc::simd {
namespace {

// Reference: the greedy two-pointer merge count, written naively. All kernels
// at all levels must equal this on every ascending input (duplicates
// included).
size_t MergeCount(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

// Sorted vector of `length` values drawn from [0, universe), optionally with
// duplicate runs.
std::vector<uint32_t> MakeSorted(Rng& rng, size_t length, uint32_t universe,
                                 bool with_duplicates) {
  std::vector<uint32_t> values;
  values.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    values.push_back(static_cast<uint32_t>(rng.NextBelow(universe)));
    if (with_duplicates && !values.empty() && rng.NextBelow(4) == 0) {
      values.push_back(values.back());  // Force duplicate runs.
      ++i;
    }
  }
  values.resize(std::min(values.size(), length));
  std::sort(values.begin(), values.end());
  if (!with_duplicates) {
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }
  return values;
}

std::vector<SimdLevel> UsableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (MaxSupportedSimdLevel() >= SimdLevel::kSse4) {
    levels.push_back(SimdLevel::kSse4);
  }
  if (MaxSupportedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// Restores the ambient dispatch level when a test ends.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : previous_(ActiveSimdLevel()) {
    EXPECT_TRUE(SetSimdLevel(level));
  }
  ~ScopedSimdLevel() { SetSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

struct Case {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  size_t offset_a = 0;  // Start index into `a` — exercises unaligned spans.
  size_t offset_b = 0;
};

// The randomized corpus the per-level checks run against: lengths 0–4k,
// balanced and heavily skewed (beyond the galloping cut-over), dense and
// sparse universes, duplicate-laden inputs, and unaligned span starts.
std::vector<Case> BuildCases() {
  Rng rng(20260806);
  std::vector<Case> cases;
  const size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                            31, 33, 64, 100, 257, 1000, 4096};
  for (size_t len_a : lengths) {
    for (size_t len_b : {len_a, len_a / 3, len_a * 2}) {
      for (bool dups : {false, true}) {
        Case c;
        const uint32_t universe =
            static_cast<uint32_t>(std::max<size_t>(len_a + len_b, 8) *
                                  (rng.NextBelow(2) == 0 ? 1 : 4));
        c.a = MakeSorted(rng, len_a, universe, dups);
        c.b = MakeSorted(rng, std::max<size_t>(len_b, 1) - (len_b == 0),
                         universe, dups);
        c.offset_a = rng.NextBelow(4);
        c.offset_b = rng.NextBelow(4);
        cases.push_back(std::move(c));
      }
    }
  }
  // Skew ratios at and far past the galloping cut-over.
  for (size_t short_len : {1, 2, 5, 16, 100}) {
    for (size_t ratio : {internal::kGallopSkew - 1, internal::kGallopSkew,
                         internal::kGallopSkew * 8}) {
      Case c;
      c.a = MakeSorted(rng, short_len, 1 << 16, true);
      c.b = MakeSorted(rng, short_len * ratio, 1 << 16, true);
      c.offset_a = rng.NextBelow(4);
      cases.push_back(std::move(c));
    }
  }
  // Identical arrays, disjoint ranges, and full-duplicate runs.
  {
    Case same;
    same.a = MakeSorted(rng, 500, 600, true);
    same.b = same.a;
    cases.push_back(same);
    Case disjoint;
    disjoint.a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    disjoint.b = {100, 101, 102, 103, 104, 105, 106, 107, 108};
    cases.push_back(disjoint);
    Case runs;
    runs.a.assign(64, 7);
    runs.b.assign(48, 7);
    runs.b.insert(runs.b.end(), 16, 9);
    cases.push_back(runs);
  }
  return cases;
}

struct SpanView {
  const uint32_t* data;
  size_t length;
  std::vector<uint32_t> owned_a;  // Keeps offset views alive.
};

std::pair<std::vector<uint32_t>, std::vector<uint32_t>> Materialize(
    const Case& c) {
  // Prepend `offset` sentinel values below/above the data so the span start
  // is unaligned relative to the allocation without changing the contents.
  std::vector<uint32_t> storage_a(c.offset_a, 0);
  storage_a.insert(storage_a.end(), c.a.begin(), c.a.end());
  std::vector<uint32_t> storage_b(c.offset_b, 0);
  storage_b.insert(storage_b.end(), c.b.begin(), c.b.end());
  return {std::move(storage_a), std::move(storage_b)};
}

TEST(SimdKernelsTest, AllLevelsMatchMergeReference) {
  const auto cases = BuildCases();
  for (SimdLevel level : UsableLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_EQ(ActiveSimdLevel(), level);
    for (size_t idx = 0; idx < cases.size(); ++idx) {
      const Case& c = cases[idx];
      const auto [storage_a, storage_b] = Materialize(c);
      const uint32_t* a = storage_a.data() + c.offset_a;
      const uint32_t* b = storage_b.data() + c.offset_b;
      const size_t expected = MergeCount(c.a, c.b);
      EXPECT_EQ(OverlapCount(a, c.a.size(), b, c.b.size()), expected)
          << "level=" << SimdLevelName(level) << " case=" << idx;
      EXPECT_EQ(OverlapCount(b, c.b.size(), a, c.a.size()), expected)
          << "level=" << SimdLevelName(level) << " case=" << idx
          << " (swapped)";
    }
  }
}

TEST(SimdKernelsTest, CappedMatchesSpecAtEveryLimit) {
  const auto cases = BuildCases();
  Rng rng(99);
  for (SimdLevel level : UsableLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t idx = 0; idx < cases.size(); ++idx) {
      const Case& c = cases[idx];
      const auto [storage_a, storage_b] = Materialize(c);
      const uint32_t* a = storage_a.data() + c.offset_a;
      const uint32_t* b = storage_b.data() + c.offset_b;
      const size_t exact = MergeCount(c.a, c.b);
      // Limits below, at, and above the exact count, plus 0 and random.
      std::vector<size_t> limits = {0, exact, exact + 1, exact + 100,
                                    rng.NextBelow(exact + 2)};
      if (exact > 0) limits.push_back(exact - 1);
      for (size_t limit : limits) {
        const size_t got = OverlapCountCapped(a, c.a.size(), b, c.b.size(),
                                              limit);
        const size_t want = exact <= limit ? exact : limit + 1;
        EXPECT_EQ(got, want) << "level=" << SimdLevelName(level)
                             << " case=" << idx << " limit=" << limit;
      }
    }
  }
}

TEST(SimdKernelsTest, AtLeastMatchesSpecAtEveryThreshold) {
  const auto cases = BuildCases();
  for (SimdLevel level : UsableLevels()) {
    ScopedSimdLevel scoped(level);
    for (size_t idx = 0; idx < cases.size(); ++idx) {
      const Case& c = cases[idx];
      const auto [storage_a, storage_b] = Materialize(c);
      const uint32_t* a = storage_a.data() + c.offset_a;
      const uint32_t* b = storage_b.data() + c.offset_b;
      const size_t exact = MergeCount(c.a, c.b);
      for (size_t required : {size_t{0}, exact, exact + 1,
                              std::min(c.a.size(), c.b.size()) + 1}) {
        size_t overlap = static_cast<size_t>(-1);
        const bool ok =
            OverlapAtLeast(a, c.a.size(), b, c.b.size(), required, &overlap);
        EXPECT_EQ(ok, exact >= required)
            << "level=" << SimdLevelName(level) << " case=" << idx
            << " required=" << required;
        if (ok) {
          EXPECT_EQ(overlap, exact)
              << "level=" << SimdLevelName(level) << " case=" << idx
              << " required=" << required;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, BatchEntryPointsMatchScalarScores) {
  Rng rng(7);
  std::vector<std::vector<uint32_t>> pool;
  for (size_t i = 0; i < 64; ++i) {
    pool.push_back(MakeSorted(rng, rng.NextBelow(300), 1 << 12,
                              rng.NextBelow(2) == 0));
  }
  const std::vector<uint32_t> probe = MakeSorted(rng, 120, 1 << 12, true);
  std::vector<RankSpan> candidates;
  for (const auto& c : pool) {
    candidates.push_back(
        {c.data(), static_cast<uint32_t>(c.size())});
  }
  const RankSpan probe_span = {probe.data(),
                               static_cast<uint32_t>(probe.size())};

  // Scalar reference outputs.
  std::vector<size_t> want_overlaps(pool.size());
  std::vector<double> want_scores(pool.size());
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    OverlapMany(probe_span, candidates.data(), candidates.size(),
                want_overlaps.data());
    ScoreMany(probe_span, candidates.data(), candidates.size(),
              SetMeasure::kJaccard, want_scores.data());
    for (size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(want_overlaps[i],
                MergeCount(probe, pool[i]))
          << "scalar OverlapMany disagrees with reference at " << i;
    }
  }

  for (SimdLevel level : UsableLevels()) {
    ScopedSimdLevel scoped(level);
    std::vector<size_t> overlaps(pool.size(), static_cast<size_t>(-1));
    std::vector<double> scores(pool.size(), -1.0);
    OverlapMany(probe_span, candidates.data(), candidates.size(),
                overlaps.data());
    ScoreMany(probe_span, candidates.data(), candidates.size(),
              SetMeasure::kJaccard, scores.data());
    EXPECT_EQ(overlaps, want_overlaps) << "level=" << SimdLevelName(level);
    for (size_t i = 0; i < pool.size(); ++i) {
      // Bit-identity, not tolerance: same integer counts through the same
      // double arithmetic.
      EXPECT_EQ(scores[i], want_scores[i])
          << "level=" << SimdLevelName(level) << " candidate=" << i;
    }
  }
}

TEST(SimdKernelsTest, DispatchReportsUsableLevelAndOverrides) {
  const SimdLevel ambient = ActiveSimdLevel();
  EXPECT_LE(ambient, MaxSupportedSimdLevel());
  for (SimdLevel level : UsableLevels()) {
    EXPECT_TRUE(SetSimdLevel(level));
    EXPECT_EQ(ActiveSimdLevel(), level);
  }
  if (MaxSupportedSimdLevel() < SimdLevel::kAvx2) {
    EXPECT_FALSE(SetSimdLevel(SimdLevel::kAvx2));
  }
  EXPECT_TRUE(SetSimdLevel(ambient));
  EXPECT_FALSE(SimdCpuFlags().empty());
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse4), "sse4");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdKernelsTest, RankSpanOverloadMatchesStringOverlap) {
  // The rank-span OverlapSize overload must agree with the kernels.
  std::vector<uint32_t> a = {1, 4, 4, 9, 20, 21};
  std::vector<uint32_t> b = {2, 4, 4, 4, 9, 22};
  EXPECT_EQ(OverlapSize(RankSpan{a.data(), 6}, RankSpan{b.data(), 6}),
            OverlapCount(a.data(), a.size(), b.data(), b.size()));
  EXPECT_EQ(OverlapSize(RankSpan{a.data(), 6}, RankSpan{b.data(), 6}), 3u);
}

}  // namespace
}  // namespace mc::simd
