// Cross-module integration: generated datasets survive a CSV round trip
// with types re-inferred, and the full debugging pipeline behaves
// identically on the reloaded tables.

#include <string>

#include <gtest/gtest.h>

#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "table/csv.h"
#include "table/profile.h"

namespace mc {
namespace {

TEST(IntegrationTest, GeneratedDatasetCsvRoundTrip) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.4));
  std::string csv_a = WriteCsvString(dataset.table_a);
  std::string csv_b = WriteCsvString(dataset.table_b);
  Result<Table> reloaded_a = ReadCsvString(csv_a);
  Result<Table> reloaded_b = ReadCsvString(csv_b);
  ASSERT_TRUE(reloaded_a.ok());
  ASSERT_TRUE(reloaded_b.ok());
  ASSERT_EQ(reloaded_a->num_rows(), dataset.table_a.num_rows());
  for (size_t r = 0; r < dataset.table_a.num_rows(); ++r) {
    for (size_t c = 0; c < dataset.table_a.num_columns(); ++c) {
      ASSERT_EQ(reloaded_a->Value(r, c), dataset.table_a.Value(r, c));
    }
  }
  // Types are lost in CSV but recoverable by inference: the 0-5 rating
  // parses as numeric, names stay string.
  Schema inferred = InferAttributeTypes(*reloaded_a);
  EXPECT_EQ(inferred.attribute(
                dataset.table_a.schema().RequireIndexOf("class")).type,
            AttributeType::kNumeric);
  EXPECT_EQ(inferred.attribute(
                dataset.table_a.schema().RequireIndexOf("name")).type,
            AttributeType::kString);
}

TEST(IntegrationTest, PipelineIdenticalAfterCsvRoundTrip) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.3));
  Result<Table> reloaded_a =
      ReadCsvString(WriteCsvString(dataset.table_a));
  Result<Table> reloaded_b =
      ReadCsvString(WriteCsvString(dataset.table_b));
  ASSERT_TRUE(reloaded_a.ok());
  ASSERT_TRUE(reloaded_b.ok());

  size_t city = dataset.table_a.schema().RequireIndexOf("city");
  auto blocker = HashBlocker::AttributeEquivalence(city);
  CandidateSet c_original = blocker->Run(dataset.table_a, dataset.table_b);
  CandidateSet c_reloaded = blocker->Run(*reloaded_a, *reloaded_b);
  ASSERT_EQ(c_original.size(), c_reloaded.size());

  MatchCatcherOptions options;
  options.joint.k = 100;
  options.joint.num_threads = 1;
  Result<DebugSession> original = DebugSession::Create(
      dataset.table_a, dataset.table_b, c_original, options);
  Result<DebugSession> reloaded = DebugSession::Create(
      *reloaded_a, *reloaded_b, c_reloaded, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());

  std::vector<PairId> e_original = original->CandidatePairs();
  std::vector<PairId> e_reloaded = reloaded->CandidatePairs();
  // Same tables (after round trip) + same seeds -> identical E.
  ASSERT_EQ(e_original.size(), e_reloaded.size());
  CandidateSet set_reloaded;
  for (PairId pair : e_reloaded) set_reloaded.Add(pair);
  for (PairId pair : e_original) {
    EXPECT_TRUE(set_reloaded.Contains(pair));
  }
}

TEST(IntegrationTest, SessionSurvivesSourceTableDestruction) {
  // The session owns its copies: the caller's tables can go away.
  std::unique_ptr<DebugSession> session;
  CandidateSet gold;
  {
    datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
        datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.2));
    gold = dataset.gold;
    auto blocker = HashBlocker::AttributeEquivalence(
        dataset.table_a.schema().RequireIndexOf("city"));
    CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);
    MatchCatcherOptions options;
    options.joint.k = 50;
    Result<DebugSession> created =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    ASSERT_TRUE(created.ok());
    session = std::make_unique<DebugSession>(std::move(created).value());
  }  // Dataset destroyed here.
  GoldOracle oracle(&gold);
  VerifierResult result = session->RunVerification(oracle);
  for (PairId pair : result.confirmed_matches) {
    EXPECT_TRUE(gold.Contains(pair));
  }
}

}  // namespace
}  // namespace mc
