#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "blocking/canopy_blocker.h"
#include "blocking/metrics.h"
#include "blocking/suffix_array_blocker.h"
#include "datagen/generator.h"
#include "table/table.h"

namespace mc {
namespace {

std::pair<Table, Table> NameTables() {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"dave smith atlanta"});     // a0
  a.AddRow({"charles williams chicago"});  // a1
  a.AddRow({"completely different words"});  // a2
  a.AddRow({""});                       // a3 (missing)
  b.AddRow({"david smith atlanta"});    // b0
  b.AddRow({"charles williams chicago"});  // b1
  b.AddRow({"unrelated tokens here"});  // b2
  return {std::move(a), std::move(b)};
}

TEST(CanopyBlockerTest, GroupsSimilarTuples) {
  auto [a, b] = NameTables();
  CanopyBlocker blocker(0, TokenizerSpec::Word(), /*loose=*/0.3,
                        /*tight=*/0.8);
  CandidateSet c = blocker.Run(a, b);
  // a0-b0 share {smith, atlanta} (jaccard 0.5): same canopy.
  EXPECT_TRUE(c.Contains(0, 0));
  // Identical tuples must share a canopy.
  EXPECT_TRUE(c.Contains(1, 1));
  // Disjoint token sets can never share a canopy.
  EXPECT_FALSE(c.Contains(0, 2));
  EXPECT_FALSE(c.Contains(2, 0));
}

TEST(CanopyBlockerTest, DeterministicForFixedSeed) {
  auto [a, b] = NameTables();
  CanopyBlocker x(0, TokenizerSpec::Word(), 0.3, 0.8, 99);
  CanopyBlocker y(0, TokenizerSpec::Word(), 0.3, 0.8, 99);
  CandidateSet cx = x.Run(a, b);
  CandidateSet cy = y.Run(a, b);
  EXPECT_EQ(cx.size(), cy.size());
  for (PairId pair : cx) EXPECT_TRUE(cy.Contains(pair));
}

TEST(CanopyBlockerTest, LooseThresholdControlsSize) {
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.5));
  size_t name_col = dataset.table_a.schema().RequireIndexOf("name");
  CanopyBlocker loose(name_col, TokenizerSpec::Word(), 0.2, 0.9);
  CanopyBlocker strict(name_col, TokenizerSpec::Word(), 0.6, 0.9);
  CandidateSet c_loose = loose.Run(dataset.table_a, dataset.table_b);
  CandidateSet c_strict = strict.Run(dataset.table_a, dataset.table_b);
  EXPECT_GT(c_loose.size(), c_strict.size());
}

TEST(CanopyBlockerTest, Description) {
  Schema schema({{"name", AttributeType::kString}});
  CanopyBlocker blocker(0, TokenizerSpec::Word(), 0.3, 0.8);
  EXPECT_NE(blocker.Description(schema).find("canopy_word(name"),
            std::string::npos);
}

TEST(SuffixArrayBlockerTest, SharedSuffixSurvives) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"katherine"});
  a.AddRow({"william"});
  b.AddRow({"catherine"});  // Shares suffix "atherine".
  b.AddRow({"xyz"});
  SuffixArrayBlocker blocker(KeyFunction(KeyFunction::Kind::kFullValue, 0),
                             /*min_suffix_length=*/5, /*max_block_size=*/50);
  CandidateSet c = blocker.Run(a, b);
  EXPECT_TRUE(c.Contains(0, 0));
  EXPECT_FALSE(c.Contains(1, 1));
  EXPECT_FALSE(c.Contains(1, 0));
}

TEST(SuffixArrayBlockerTest, ShortKeysNeverBlock) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"abc"});
  b.AddRow({"abc"});
  SuffixArrayBlocker blocker(KeyFunction(KeyFunction::Kind::kFullValue, 0),
                             5, 50);
  EXPECT_EQ(blocker.Run(a, b).size(), 0u);
}

TEST(SuffixArrayBlockerTest, OversizedBlocksDropped) {
  Schema schema({{"name", AttributeType::kString}});
  Table a(schema), b(schema);
  // Ten identical keys: the full-key block has 20 members.
  for (int i = 0; i < 10; ++i) {
    a.AddRow({"samesuffix"});
    b.AddRow({"samesuffix"});
  }
  SuffixArrayBlocker small_blocks(
      KeyFunction(KeyFunction::Kind::kFullValue, 0), 5,
      /*max_block_size=*/10);
  EXPECT_EQ(small_blocks.Run(a, b).size(), 0u);
  SuffixArrayBlocker big_blocks(
      KeyFunction(KeyFunction::Kind::kFullValue, 0), 5,
      /*max_block_size=*/100);
  EXPECT_EQ(big_blocks.Run(a, b).size(), 100u);
}

TEST(SuffixArrayBlockerTest, RecallOnDirtyNames) {
  // Suffix blocking tolerates prefix corruption (e.g. dropped first word).
  datagen::GeneratedDataset dataset = datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.5));
  size_t phone_col = dataset.table_a.schema().RequireIndexOf("phone");
  SuffixArrayBlocker blocker(
      KeyFunction(KeyFunction::Kind::kFullValue, phone_col), 6, 100);
  CandidateSet c = blocker.Run(dataset.table_a, dataset.table_b);
  BlockerMetrics metrics =
      EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());
  // Phones are rarely corrupted, and suffix blocking also survives the
  // "(415) 555 1234" reformatting for the shared numeric tail.
  EXPECT_GT(metrics.recall, 0.8);
}

}  // namespace
}  // namespace mc
