#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "learn/features.h"
#include "ssj/topk_list.h"
#include "table/table.h"
#include "util/random.h"
#include "verifier/match_verifier.h"
#include "verifier/user_oracle.h"

namespace mc {
namespace {

// A small synthetic world: pairs (i, i) are matches, with feature-friendly
// structure — matching rows share most name words, non-matching share few.
struct World {
  Table a, b;
  CandidateSet gold;
  std::vector<std::vector<ScoredPair>> lists;
  std::unique_ptr<PairFeatureExtractor> extractor;

  World() : a(MakeSchema()), b(MakeSchema()) {}

  static Schema MakeSchema() {
    return Schema({{"name", AttributeType::kString},
                   {"city", AttributeType::kString}});
  }
};

std::unique_ptr<World> MakeWorld(size_t rows, uint64_t seed) {
  auto world = std::make_unique<World>();
  Rng rng(seed);
  static const char* const kCities[] = {"atlanta", "boston", "chicago",
                                        "denver"};
  for (size_t i = 0; i < rows; ++i) {
    std::string base = "entity" + std::to_string(i) + " token" +
                       std::to_string(rng.NextBelow(6)) + " word" +
                       std::to_string(i % 7);
    std::string city = kCities[i % 4];
    world->a.AddRow({base, city});
    // Match: same words, maybe one typo'd token appended.
    std::string matched = base + (rng.NextBool(0.4) ? " extra" : "");
    world->b.AddRow({matched, city});
    world->gold.Add(static_cast<RowId>(i), static_cast<RowId>(i));
  }
  // Two top-k lists ("configs"): one scoring matches high with some noise
  // pairs, one mostly noise.
  std::vector<ScoredPair> list1, list2;
  for (size_t i = 0; i < rows; ++i) {
    list1.push_back({MakePairId(static_cast<RowId>(i),
                                static_cast<RowId>(i)),
                     0.9 - 0.3 * static_cast<double>(i) / rows});
    // Noise pair (i, i+1).
    if (i + 1 < rows) {
      list1.push_back({MakePairId(static_cast<RowId>(i),
                                  static_cast<RowId>(i + 1)),
                       0.85 - 0.4 * static_cast<double>(i) / rows});
    }
    list2.push_back({MakePairId(static_cast<RowId>(i),
                                static_cast<RowId>((i + 2) % rows)),
                     0.8 - 0.5 * static_cast<double>(i) / rows});
  }
  auto by_score = [](const ScoredPair& x, const ScoredPair& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.pair < y.pair;
  };
  std::sort(list1.begin(), list1.end(), by_score);
  std::sort(list2.begin(), list2.end(), by_score);
  world->lists = {list1, list2};
  world->extractor =
      std::make_unique<PairFeatureExtractor>(&world->a, &world->b);
  return world;
}

VerifierOptions SmallOptions() {
  VerifierOptions options;
  options.pairs_per_iteration = 10;
  options.forest.num_trees = 8;
  return options;
}

TEST(MatchVerifierTest, FindsMostMatchesWithOracle) {
  auto world = MakeWorld(40, 5);
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&world->gold);
  VerifierResult result = verifier.Run(oracle);
  // Every confirmed match must be gold.
  for (PairId pair : result.confirmed_matches) {
    EXPECT_TRUE(world->gold.Contains(pair));
  }
  // The lists contain all 40 gold pairs; the verifier should find most of
  // them before its natural stop.
  EXPECT_GE(result.confirmed_matches.size(), 30u);
  EXPECT_FALSE(result.iterations.empty());
}

TEST(MatchVerifierTest, PhaseProgression) {
  auto world = MakeWorld(40, 6);
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&world->gold);
  VerifierResult result = verifier.Run(oracle);
  // Phases must appear in order: medrank+ then active{<=3} then online*.
  size_t i = 0;
  const auto& iterations = result.iterations;
  while (i < iterations.size() && iterations[i].phase == "medrank") ++i;
  EXPECT_GT(i, 0u) << "bootstrap must run at least once";
  size_t active = 0;
  while (i < iterations.size() && iterations[i].phase == "active") {
    ++i;
    ++active;
  }
  EXPECT_LE(active, 3u);
  while (i < iterations.size() && iterations[i].phase == "online") ++i;
  EXPECT_EQ(i, iterations.size()) << "unexpected phase order";
}

TEST(MatchVerifierTest, StopsAfterTwoEmptyIterations) {
  // Gold contains nothing -> every iteration is empty -> stop after 2.
  auto world = MakeWorld(40, 7);
  CandidateSet empty_gold;
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&empty_gold);
  VerifierResult result = verifier.Run(oracle);
  EXPECT_EQ(result.iterations.size(), 2u);
  EXPECT_EQ(result.confirmed_matches.size(), 0u);
}

TEST(MatchVerifierTest, RunIterationsIgnoresNaturalStop) {
  auto world = MakeWorld(40, 8);
  CandidateSet empty_gold;
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&empty_gold);
  VerifierResult result = verifier.RunIterations(oracle, 5);
  EXPECT_EQ(result.iterations.size(), 5u);
}

TEST(MatchVerifierTest, WmrModeWorks) {
  auto world = MakeWorld(40, 9);
  VerifierOptions options = SmallOptions();
  options.use_learning = false;
  MatchVerifier verifier(world->lists, world->extractor.get(), options);
  GoldOracle oracle(&world->gold);
  VerifierResult result = verifier.Run(oracle);
  for (const IterationTrace& trace : result.iterations) {
    EXPECT_EQ(trace.phase, "wmr");
  }
  EXPECT_GT(result.confirmed_matches.size(), 0u);
}

TEST(MatchVerifierTest, NeverShowsPairTwice) {
  auto world = MakeWorld(30, 10);
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&world->gold);
  VerifierResult result = verifier.Run(oracle);
  CandidateSet seen;
  for (const IterationTrace& trace : result.iterations) {
    for (PairId pair : trace.shown) {
      EXPECT_FALSE(seen.Contains(pair)) << "pair shown twice";
      seen.Add(pair);
    }
  }
}

TEST(MatchVerifierTest, ExhaustsSmallCandidateSet) {
  auto world = MakeWorld(4, 11);
  VerifierOptions options = SmallOptions();
  options.stop_after_empty_iterations = 100;  // Effectively off.
  MatchVerifier verifier(world->lists, world->extractor.get(), options);
  GoldOracle oracle(&world->gold);
  VerifierResult result = verifier.Run(oracle);
  // All candidates get shown, then the loop ends.
  size_t total_candidates =
      MatchVerifier(world->lists, world->extractor.get(), options)
          .candidates()
          .size();
  EXPECT_EQ(result.pairs_shown, total_candidates);
}

TEST(MatchVerifierTest, IncrementalApiMatchesBatching) {
  auto world = MakeWorld(25, 12);
  MatchVerifier verifier(world->lists, world->extractor.get(),
                         SmallOptions());
  GoldOracle oracle(&world->gold);
  size_t iterations = 0;
  while (!verifier.ShouldStop()) {
    std::vector<PairId> batch = verifier.NextBatch();
    if (batch.empty()) break;
    std::vector<std::pair<PairId, bool>> labels;
    for (PairId pair : batch) {
      labels.emplace_back(pair, oracle.IsMatch(pair));
    }
    verifier.SubmitLabels(labels);
    ++iterations;
  }
  EXPECT_GT(iterations, 0u);
  EXPECT_GT(verifier.confirmed_matches().size(), 0u);
  EXPECT_EQ(verifier.iterations().size(), iterations);
}

TEST(MatchVerifierTest, LearningBeatsOrEqualsWmrOnStructuredData) {
  // The §6.5 claim in miniature: active/online learning should find at
  // least as many matches as WMR within a fixed iteration budget.
  auto world = MakeWorld(60, 13);
  GoldOracle oracle(&world->gold);

  VerifierOptions learn_options = SmallOptions();
  MatchVerifier learner(world->lists, world->extractor.get(), learn_options);
  VerifierResult learned = learner.RunIterations(oracle, 8);

  VerifierOptions wmr_options = SmallOptions();
  wmr_options.use_learning = false;
  MatchVerifier wmr(world->lists, world->extractor.get(), wmr_options);
  VerifierResult ranked = wmr.RunIterations(oracle, 8);

  EXPECT_GE(learned.confirmed_matches.size() + 2,
            ranked.confirmed_matches.size());
}

TEST(MatchVerifierTest, BatchedRerankIsBitIdenticalAcrossThreadCounts) {
  // The batched re-ranking (parallel feature-matrix build + fused
  // PredictBatch) must produce byte-identical runs at 1 and 4 threads:
  // same batches in the same order, same phases, same confirmed matches.
  auto make_result = [](size_t num_threads) {
    auto world = MakeWorld(60, 11);
    VerifierOptions options = SmallOptions();
    options.num_threads = num_threads;
    MatchVerifier verifier(world->lists, world->extractor.get(), options);
    GoldOracle oracle(&world->gold);
    return verifier.Run(oracle);
  };
  const VerifierResult sequential = make_result(1);
  const VerifierResult parallel = make_result(4);

  ASSERT_EQ(sequential.num_iterations(), parallel.num_iterations());
  for (size_t i = 0; i < sequential.num_iterations(); ++i) {
    EXPECT_EQ(sequential.iterations[i].phase, parallel.iterations[i].phase)
        << "iteration " << i;
    EXPECT_EQ(sequential.iterations[i].shown, parallel.iterations[i].shown)
        << "iteration " << i;
    EXPECT_EQ(sequential.iterations[i].new_matches,
              parallel.iterations[i].new_matches)
        << "iteration " << i;
  }
  EXPECT_EQ(sequential.confirmed_matches.SortedPairs(),
            parallel.confirmed_matches.SortedPairs());
  EXPECT_EQ(sequential.pairs_shown, parallel.pairs_shown);
}

TEST(RandomForestBatchTest, PredictBatchMatchesSingleSamplePredictions) {
  // Train a small forest on the synthetic world's features, then check the
  // fused batch path against the per-sample getters, at 1 and 4 threads.
  auto world = MakeWorld(30, 3);
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  for (size_t i = 0; i < 30; ++i) {
    const PairId match = MakePairId(static_cast<RowId>(i),
                                    static_cast<RowId>(i));
    features.push_back(world->extractor->Extract(match));
    labels.push_back(1);
    const PairId non_match = MakePairId(static_cast<RowId>(i),
                                        static_cast<RowId>((i + 5) % 30));
    features.push_back(world->extractor->Extract(non_match));
    labels.push_back(0);
  }
  ForestParams params;
  params.num_trees = 16;
  const RandomForest forest = RandomForest::Train(features, labels, params);

  const size_t nf = world->extractor->num_features();
  std::vector<double> matrix(features.size() * nf);
  for (size_t i = 0; i < features.size(); ++i) {
    std::copy(features[i].begin(), features[i].end(),
              matrix.begin() + i * nf);
  }
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<double> confidence(features.size(), -1.0);
    std::vector<double> controversy(features.size(), -1.0);
    forest.PredictBatch(matrix.data(), features.size(), nf, threads,
                        confidence.data(), controversy.data());
    for (size_t i = 0; i < features.size(); ++i) {
      const ForestPrediction fused = forest.Predict(features[i]);
      EXPECT_EQ(confidence[i], forest.Confidence(features[i]))
          << "threads=" << threads << " sample=" << i;
      EXPECT_EQ(confidence[i], fused.confidence)
          << "threads=" << threads << " sample=" << i;
      EXPECT_EQ(controversy[i], fused.controversy)
          << "threads=" << threads << " sample=" << i;
    }
  }
}

TEST(PairFeatureExtractorBatchTest, ExtractBatchMatchesExtract) {
  auto world = MakeWorld(25, 9);
  std::vector<PairId> pairs;
  for (size_t i = 0; i < 25; ++i) {
    pairs.push_back(MakePairId(static_cast<RowId>(i), static_cast<RowId>(i)));
    pairs.push_back(MakePairId(static_cast<RowId>(i),
                               static_cast<RowId>((i + 3) % 25)));
  }
  const size_t nf = world->extractor->num_features();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<double> matrix(pairs.size() * nf, -1.0);
    world->extractor->ExtractBatch(pairs.data(), pairs.size(), threads,
                                   matrix.data());
    for (size_t i = 0; i < pairs.size(); ++i) {
      const FeatureVector want = world->extractor->Extract(pairs[i]);
      const FeatureVector got(matrix.begin() + i * nf,
                              matrix.begin() + (i + 1) * nf);
      EXPECT_EQ(got, want) << "threads=" << threads << " pair=" << i;
    }
  }
}

}  // namespace
}  // namespace mc
