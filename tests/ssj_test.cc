#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/candidate_set.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "ssj/topk_list.h"
#include "table/table.h"
#include "text/similarity.h"
#include "util/random.h"

namespace mc {
namespace {

TEST(TopKListTest, KeepsBestK) {
  TopKList list(3);
  EXPECT_EQ(list.KthScore(), -1.0);
  EXPECT_TRUE(list.Add(MakePairId(0, 0), 0.5));
  EXPECT_TRUE(list.Add(MakePairId(0, 1), 0.9));
  EXPECT_TRUE(list.Add(MakePairId(0, 2), 0.1));
  EXPECT_TRUE(list.full());
  EXPECT_DOUBLE_EQ(list.KthScore(), 0.1);
  EXPECT_TRUE(list.Add(MakePairId(0, 3), 0.7));   // Evicts 0.1.
  EXPECT_FALSE(list.Add(MakePairId(0, 4), 0.2));  // Below new k-th (0.5).
  std::vector<ScoredPair> sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].score, 0.9);
  EXPECT_DOUBLE_EQ(sorted[1].score, 0.7);
  EXPECT_DOUBLE_EQ(sorted[2].score, 0.5);
}

TEST(TopKListTest, TiesPreferSmallerPairId) {
  TopKList list(2);
  list.Add(MakePairId(0, 5), 0.5);
  list.Add(MakePairId(0, 9), 0.5);
  // Equal score, smaller id: replaces the larger-id entry.
  EXPECT_TRUE(list.Add(MakePairId(0, 1), 0.5));
  EXPECT_TRUE(list.Contains(MakePairId(0, 1)));
  EXPECT_TRUE(list.Contains(MakePairId(0, 5)));
  EXPECT_FALSE(list.Contains(MakePairId(0, 9)));
  // Equal score, larger id than the worst: rejected.
  EXPECT_FALSE(list.Add(MakePairId(0, 7), 0.5));
}

TEST(TopKListTest, DuplicatePairIgnored) {
  TopKList list(2);
  list.Add(MakePairId(1, 1), 0.8);
  EXPECT_TRUE(list.Add(MakePairId(1, 1), 0.8));
  EXPECT_EQ(list.size(), 1u);
}

TEST(TopKListTest, ReAddUpdatesScoreInPlace) {
  TopKList list(3);
  list.Add(MakePairId(0, 0), 0.9);
  list.Add(MakePairId(0, 1), 0.5);
  list.Add(MakePairId(0, 2), 0.3);
  // Upward correction re-sifts: the k-th entry changes.
  EXPECT_TRUE(list.Add(MakePairId(0, 2), 0.7));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list.KthScore(), 0.5);
  // Downward correction must not be fast-rejected even when the new score
  // is below the current k-th: the stored score updates in place.
  EXPECT_TRUE(list.Add(MakePairId(0, 0), 0.1));
  EXPECT_DOUBLE_EQ(list.KthScore(), 0.1);
  std::vector<ScoredPair> sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].pair, MakePairId(0, 2));
  EXPECT_DOUBLE_EQ(sorted[0].score, 0.7);
  EXPECT_EQ(sorted[2].pair, MakePairId(0, 0));
  EXPECT_DOUBLE_EQ(sorted[2].score, 0.1);
  // A fresh pair below the (corrected) k-th is still rejected.
  EXPECT_FALSE(list.Add(MakePairId(0, 9), 0.05));
}

TEST(TopKListTest, MergeDeduplicates) {
  TopKList list(4);
  list.Add(MakePairId(0, 0), 0.9);
  list.Add(MakePairId(0, 1), 0.8);
  list.MergeFrom({{MakePairId(0, 0), 0.9}, {MakePairId(0, 2), 0.7}});
  EXPECT_EQ(list.size(), 3u);
}

TEST(TopKListTest, RandomizedAgainstSort) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 1 + rng.NextBelow(10);
    TopKList list(k);
    std::vector<ScoredPair> all;
    size_t n = 1 + rng.NextBelow(200);
    for (size_t i = 0; i < n; ++i) {
      ScoredPair entry{MakePairId(0, static_cast<RowId>(i)),
                       static_cast<double>(rng.NextBelow(20)) / 20.0};
      all.push_back(entry);
      list.Add(entry.pair, entry.score);
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredPair& x, const ScoredPair& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.pair < y.pair;
              });
    all.resize(std::min(all.size(), k));
    std::vector<ScoredPair> got = list.SortedDescending();
    ASSERT_EQ(got.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(got[i].pair, all[i].pair) << "trial " << trial << " i " << i;
      EXPECT_DOUBLE_EQ(got[i].score, all[i].score);
    }
  }
}

// --------------------------------------------------------------------------
// Corpus.
// --------------------------------------------------------------------------

std::pair<Table, Table> SmallTables() {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"Dave Smith", "Altanta"});
  a.AddRow({"Joe Welson", "New York"});
  a.AddRow({"", ""});
  b.AddRow({"David Smith", "Atlanta"});
  b.AddRow({"Joe Wilson", "NY"});
  return {std::move(a), std::move(b)};
}

TEST(CorpusTest, BuildAndConfigViews) {
  auto [a, b] = SmallTables();
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  EXPECT_EQ(corpus.num_attributes(), 2u);
  ASSERT_EQ(corpus.rows_a(), 3u);
  ASSERT_EQ(corpus.rows_b(), 2u);
  // a0 = {dave, smith} in name; {altanta} in city.
  EXPECT_EQ(corpus.tuple_a(0).size(), 3u);
  EXPECT_EQ(corpus.tuple_a(2).size(), 0u);  // Empty tuple.

  ConfigView both = corpus.MakeConfigView(0b11);
  EXPECT_EQ(both.a(0).size(), 3u);
  ConfigView name_only = corpus.MakeConfigView(0b01);
  EXPECT_EQ(name_only.a(0).size(), 2u);
  ConfigView city_only = corpus.MakeConfigView(0b10);
  EXPECT_EQ(city_only.a(0).size(), 1u);
  EXPECT_EQ(city_only.a(1).size(), 2u);  // new, york.

  // Token arrays must be sorted by global rank.
  for (size_t row = 0; row < both.rows_a(); ++row) {
    TokenSpan tokens = both.a(row);
    EXPECT_TRUE(std::is_sorted(tokens.begin(), tokens.end()));
  }
  // Dense-index sizing contract: every rank is below rank_limit().
  EXPECT_EQ(both.rank_limit(), corpus.dictionary().size());
  for (size_t row = 0; row < both.rows_a(); ++row) {
    for (uint32_t rank : both.a(row)) EXPECT_LT(rank, both.rank_limit());
  }
  for (size_t row = 0; row < both.rows_b(); ++row) {
    for (uint32_t rank : both.b(row)) EXPECT_LT(rank, both.rank_limit());
  }
}

TEST(CorpusTest, TokenSharedAcrossAttributesHasCombinedMask) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"Madison Smith", "Madison"});
  b.AddRow({"x", "y"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  // "madison" appears in both attributes -> one entry with mask 0b11.
  const TupleTokens tuple = corpus.tuple_a(0);
  ASSERT_EQ(tuple.size(), 2u);  // {madison, smith}.
  bool found_combined = false;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.masks[i] == 0b11) found_combined = true;
  }
  EXPECT_TRUE(found_combined);
  // Its config length under each single attribute counts madison once.
  EXPECT_EQ(SsjCorpus::ConfigLength(tuple, 0b01), 2u);  // madison, smith.
  EXPECT_EQ(SsjCorpus::ConfigLength(tuple, 0b10), 1u);  // madison.
}

TEST(CorpusTest, ConfigOverlapFiltersByMask) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"jim madison", "smithville"});
  b.AddRow({"jim smithville", "madison"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  const TupleTokens ta = corpus.tuple_a(0);
  const TupleTokens tb = corpus.tuple_b(0);
  // Under both attributes: jim, madison, smithville all shared.
  EXPECT_EQ(SsjCorpus::ConfigOverlap(ta, tb, 0b11), 3u);
  // Under name only: jim shared; madison is in a.name but b.city.
  EXPECT_EQ(SsjCorpus::ConfigOverlap(ta, tb, 0b01), 1u);
  // Under city only: nothing shared (smithville on opposite attributes).
  EXPECT_EQ(SsjCorpus::ConfigOverlap(ta, tb, 0b10), 0u);
}

// --------------------------------------------------------------------------
// Top-k joins vs brute force.
// --------------------------------------------------------------------------

// Random word-soup tables for property tests.
std::pair<Table, Table> RandomTables(Rng& rng, size_t rows_a, size_t rows_b,
                                     size_t vocabulary, size_t max_tokens) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  auto make_row = [&](Table& table) {
    size_t n = rng.NextBelow(max_tokens + 1);
    std::string text;
    for (size_t t = 0; t < n; ++t) {
      if (t > 0) text += ' ';
      text += "w" + std::to_string(rng.NextZipf(vocabulary, 0.8));
    }
    table.AddRow({text});
  };
  for (size_t i = 0; i < rows_a; ++i) make_row(a);
  for (size_t i = 0; i < rows_b; ++i) make_row(b);
  return {std::move(a), std::move(b)};
}

// Checks that `got` is a valid top-k: same score multiset as brute force and
// all scores correct.
void ExpectTopKEquivalent(const TopKList& got, const TopKList& expected,
                          const ConfigView& view, SetMeasure measure,
                          const std::string& label) {
  std::vector<ScoredPair> got_sorted = got.SortedDescending();
  std::vector<ScoredPair> expected_sorted = expected.SortedDescending();
  ASSERT_EQ(got_sorted.size(), expected_sorted.size()) << label;
  DirectPairScorer scorer(&view, measure);
  for (size_t i = 0; i < got_sorted.size(); ++i) {
    EXPECT_NEAR(got_sorted[i].score, expected_sorted[i].score, 1e-12)
        << label << " rank " << i;
    // Claimed score must equal the true score of the claimed pair.
    EXPECT_NEAR(got_sorted[i].score,
                scorer.Score(PairRowA(got_sorted[i].pair),
                             PairRowB(got_sorted[i].pair)),
                1e-12)
        << label << " rank " << i;
  }
}

class TopKJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKJoinPropertyTest, MatchesBruteForceAcrossMeasuresAndK) {
  Rng rng(GetParam());
  auto [a, b] = RandomTables(rng, 60, 70, 40, 8);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  for (SetMeasure measure : {SetMeasure::kJaccard, SetMeasure::kCosine,
                             SetMeasure::kDice,
                             SetMeasure::kOverlapCoefficient}) {
    for (size_t k : {1u, 5u, 25u, 200u}) {
      TopKJoinOptions options;
      options.k = k;
      options.measure = measure;
      TopKList got = RunTopKJoin(view, options);
      TopKList expected = BruteForceTopK(view, k, measure);
      ExpectTopKEquivalent(got, expected, view, measure,
                           std::string(SetMeasureName(measure)) + " k=" +
                               std::to_string(k));
    }
  }
}

TEST_P(TopKJoinPropertyTest, ExclusionRemovesBlockedPairs) {
  Rng rng(GetParam() + 500);
  auto [a, b] = RandomTables(rng, 50, 50, 30, 6);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  // Exclude the unblocked top-10 pairs, then re-join.
  TopKJoinOptions options;
  options.k = 10;
  TopKList unrestricted = RunTopKJoin(view, options);
  CandidateSet blocked;
  for (const ScoredPair& entry : unrestricted.Entries()) {
    blocked.Add(entry.pair);
  }
  options.exclude = &blocked;
  options.k = 20;
  TopKList restricted = RunTopKJoin(view, options);
  for (const ScoredPair& entry : restricted.Entries()) {
    EXPECT_FALSE(blocked.Contains(entry.pair));
  }
  TopKList expected = BruteForceTopK(view, 20, SetMeasure::kJaccard, &blocked);
  ExpectTopKEquivalent(restricted, expected, view, SetMeasure::kJaccard,
                       "with exclusion");
}

TEST_P(TopKJoinPropertyTest, SeedingDoesNotChangeResult) {
  Rng rng(GetParam() + 900);
  auto [a, b] = RandomTables(rng, 50, 60, 30, 6);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  TopKJoinOptions options;
  options.k = 30;

  TopKList expected = RunTopKJoin(view, options);
  // Seed with correct scores for some arbitrary pairs (as parent reuse
  // does after re-adjustment).
  DirectPairScorer scorer(&view, options.measure);
  std::vector<ScoredPair> seed;
  for (RowId i = 0; i < 10 && i < view.rows_a(); ++i) {
    RowId j = i % static_cast<RowId>(view.rows_b());
    if (view.a(i).empty() || view.b(j).empty()) continue;
    seed.push_back(ScoredPair{MakePairId(i, j), scorer.Score(i, j)});
  }
  TopKList seeded = RunTopKJoin(view, options, nullptr, &seed);
  ExpectTopKEquivalent(seeded, expected, view, options.measure, "seeded");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKJoinPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(TopKJoinTest, QOneIsTopKJoinAndHigherQIsSubsetLike) {
  Rng rng(7);
  auto [a, b] = RandomTables(rng, 80, 80, 50, 8);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  TopKJoinOptions options;
  options.k = 50;

  TopKJoinStats stats_q1;
  options.q = 1;
  TopKList q1 = RunTopKJoin(view, options, nullptr, nullptr, nullptr,
                            &stats_q1);
  TopKList brute = BruteForceTopK(view, options.k, options.measure);
  ExpectTopKEquivalent(q1, brute, view, options.measure, "q=1");

  TopKJoinStats stats_q3;
  options.q = 3;
  TopKList q3 = RunTopKJoin(view, options, nullptr, nullptr, nullptr,
                            &stats_q3);
  // QJoin's point: fewer full score computations.
  EXPECT_LE(stats_q3.pairs_scored, stats_q1.pairs_scored);
  // Every returned pair's score is still exact.
  DirectPairScorer scorer(&view, options.measure);
  for (const ScoredPair& entry : q3.Entries()) {
    EXPECT_NEAR(entry.score,
                scorer.Score(PairRowA(entry.pair), PairRowB(entry.pair)),
                1e-12);
  }
}

TEST(TopKJoinTest, EmptyInputs) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({""});
  b.AddRow({"something here"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  TopKJoinOptions options;
  options.k = 5;
  TopKList result = RunTopKJoin(view, options);
  EXPECT_EQ(result.size(), 0u);
}

TEST(TopKJoinTest, IdenticalStringsScoreOne) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"alpha beta gamma"});
  b.AddRow({"alpha beta gamma"});
  b.AddRow({"delta epsilon"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  TopKJoinOptions options;
  options.k = 1;
  TopKList result = RunTopKJoin(view, options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result.Entries()[0].score, 1.0);
  EXPECT_EQ(result.Entries()[0].pair, MakePairId(0, 0));
}

TEST(TopKJoinTest, StatsArePopulated) {
  Rng rng(3);
  auto [a, b] = RandomTables(rng, 40, 40, 20, 6);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  TopKJoinOptions options;
  options.k = 10;
  TopKJoinStats stats;
  RunTopKJoin(view, options, nullptr, nullptr, nullptr, &stats);
  EXPECT_GT(stats.events_popped, 0u);
  EXPECT_GT(stats.pairs_scored, 0u);
  EXPECT_GT(stats.tokens_indexed, 0u);
}

TEST(TopKJoinTest, SelectQByRaceReturnsValidQ) {
  Rng rng(5);
  auto [a, b] = RandomTables(rng, 60, 60, 30, 8);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);
  size_t q = SelectQByRace(view, SetMeasure::kJaccard, nullptr, 4, 20);
  EXPECT_GE(q, 1u);
  EXPECT_LE(q, 4u);
}

}  // namespace
}  // namespace mc
