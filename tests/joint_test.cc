#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "datagen/generator.h"
#include "joint/caching_scorer.h"
#include "joint/joint_executor.h"
#include "joint/overlap_cache.h"
#include "learn/features.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/run_context.h"
#include "util/stopwatch.h"
#include "verifier/match_verifier.h"

namespace mc {
namespace {

TEST(OverlapCacheTest, ComputeSharedAndFilter) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"jim madison", "smithville"});
  b.AddRow({"jim smithville", "madison"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  CachedOverlap shared = OverlapCache::ComputeShared(corpus.tuple_a(0),
                                                     corpus.tuple_b(0));
  EXPECT_EQ(shared.size(), 3u);  // jim, madison, smithville.
  EXPECT_EQ(OverlapCache::OverlapUnder(shared, 0b11), 3u);
  EXPECT_EQ(OverlapCache::OverlapUnder(shared, 0b01), 1u);
  EXPECT_EQ(OverlapCache::OverlapUnder(shared, 0b10), 0u);
}

TEST(OverlapCacheTest, InsertFindRoundTrip) {
  OverlapCache cache;
  EXPECT_EQ(cache.Find(MakePairId(1, 2)), nullptr);
  CachedOverlap overlap{{0b01, 0b10}};
  const CachedOverlap* stored = cache.Insert(MakePairId(1, 2), overlap);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.Find(MakePairId(1, 2)), stored);
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(CachingScorerTest, AgreesWithDirectScorer) {
  Rng rng(42);
  Schema schema({{"name", AttributeType::kString},
                 {"desc", AttributeType::kString}});
  Table a(schema), b(schema);
  for (int i = 0; i < 30; ++i) {
    std::string name = "name" + std::to_string(rng.NextBelow(10)) + " token" +
                       std::to_string(rng.NextBelow(5));
    std::string desc = "d" + std::to_string(rng.NextBelow(8)) + " d" +
                       std::to_string(rng.NextBelow(8));
    a.AddRow({name, desc});
    b.AddRow({name + " extra", desc});
  }
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  for (ConfigMask config : {0b11u, 0b01u, 0b10u}) {
    ConfigView view = corpus.MakeConfigView(config);
    DirectPairScorer direct(&view, SetMeasure::kJaccard);
    OverlapCache cache;
    CachingPairScorer caching(&corpus, &view, config, SetMeasure::kJaccard,
                              &cache, true);
    for (RowId i = 0; i < 30; ++i) {
      for (RowId j = 0; j < 30; j += 7) {
        EXPECT_NEAR(caching.Score(i, j), direct.Score(i, j), 1e-12)
            << "config " << config;
      }
    }
  }
}

TEST(CachingScorerTest, SecondConfigHitsCache) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString}});
  Table a(schema), b(schema);
  a.AddRow({"dave smith", "atlanta"});
  b.AddRow({"david smith", "atlanta"});
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1});
  OverlapCache cache;

  ConfigView view_root = corpus.MakeConfigView(0b11);
  CachingPairScorer root(&corpus, &view_root, 0b11, SetMeasure::kJaccard,
                         &cache, true);
  root.Score(0, 0);
  EXPECT_EQ(root.cache_misses(), 1u);
  // Only pairs kept in a top-k list are published to the cache.
  EXPECT_EQ(cache.Size(), 0u);
  root.NoteKept(0, 0);
  EXPECT_EQ(cache.Size(), 1u);

  ConfigView view_child = corpus.MakeConfigView(0b01);
  CachingPairScorer child(&corpus, &view_child, 0b01, SetMeasure::kJaccard,
                          &cache, true);
  double score = child.Score(0, 0);
  EXPECT_EQ(child.cache_hits(), 1u);
  EXPECT_EQ(child.cache_misses(), 0u);
  // {dave, smith} vs {david, smith} -> 1/3.
  EXPECT_NEAR(score, 1.0 / 3.0, 1e-12);
}

// --------------------------------------------------------------------------
// Joint execution: Theorem 4.2 — joint result per config equals the
// independent per-config QJoin (and brute force), for every reuse mode and
// thread count.
// --------------------------------------------------------------------------

std::pair<Table, Table> RandomThreeAttrTables(Rng& rng, size_t rows) {
  Schema schema({{"name", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"desc", AttributeType::kString}});
  Table a(schema), b(schema);
  auto word = [&](const char* prefix, size_t vocab) {
    return std::string(prefix) + std::to_string(rng.NextZipf(vocab, 0.7));
  };
  auto make_row = [&](Table& table) {
    std::string name = word("n", 30) + " " + word("n", 30);
    std::string city = word("c", 10);
    std::string desc;
    size_t len = rng.NextBelow(6);
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) desc += ' ';
      desc += word("d", 40);
    }
    if (rng.NextBool(0.1)) name = "";
    if (rng.NextBool(0.2)) city = "";
    table.AddRow({name, city, desc});
  };
  for (size_t i = 0; i < rows; ++i) make_row(a);
  for (size_t i = 0; i < rows; ++i) make_row(b);
  return {std::move(a), std::move(b)};
}

struct JointModes {
  bool reuse_overlaps;
  bool reuse_topk;
  size_t threads;
};

class JointEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(JointEquivalenceTest, JointEqualsIndependentPerConfig) {
  auto [seed, mode_index] = GetParam();
  const JointModes kModes[] = {
      {false, false, 1}, {true, false, 1},  {false, true, 1},
      {true, true, 1},   {true, true, 4},   {false, false, 4},
  };
  const JointModes mode = kModes[mode_index];

  Rng rng(seed);
  auto [a, b] = RandomThreeAttrTables(rng, 50);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});

  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  ConfigTree tree = GenerateConfigTree(attrs);
  ASSERT_EQ(tree.size(), 6u);

  // A small exclusion set to exercise the C-filter.
  CandidateSet exclude;
  for (RowId i = 0; i < 20; ++i) exclude.Add(i, i);

  JointOptions options;
  options.k = 25;
  options.q = 1;
  options.exclude = &exclude;
  options.reuse_overlaps = mode.reuse_overlaps;
  options.reuse_topk = mode.reuse_topk;
  options.reuse_min_avg_tokens = 0.0;  // Force the cache on when enabled.
  options.num_threads = mode.threads;

  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  ASSERT_EQ(joint.per_config.size(), tree.size());

  for (size_t i = 0; i < tree.size(); ++i) {
    ConfigView view = corpus.MakeConfigView(tree.nodes[i].mask);
    TopKList brute =
        BruteForceTopK(view, options.k, options.measure, &exclude);
    std::vector<ScoredPair> expected = brute.SortedDescending();
    const std::vector<ScoredPair>& got = joint.per_config[i].topk;
    ASSERT_EQ(got.size(), expected.size())
        << "config node " << i << " mask " << tree.nodes[i].mask;
    DirectPairScorer scorer(&view, options.measure);
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_NEAR(got[r].score, expected[r].score, 1e-12)
          << "node " << i << " rank " << r;
      EXPECT_NEAR(got[r].score,
                  scorer.Score(PairRowA(got[r].pair), PairRowB(got[r].pair)),
                  1e-12);
      EXPECT_FALSE(exclude.Contains(got[r].pair));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, JointEquivalenceTest,
    ::testing::Combine(::testing::Values(101, 202),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

TEST(JointExecutorTest, ReportsReuseActivation) {
  Rng rng(77);
  auto [a, b] = RandomThreeAttrTables(rng, 30);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  ConfigTree tree = GenerateConfigTree(attrs);

  JointOptions options;
  options.k = 10;
  options.num_threads = 1;
  options.reuse_min_avg_tokens = 1000.0;  // Never triggers.
  JointResult no_reuse = RunJointTopKJoins(corpus, tree, options);
  EXPECT_FALSE(no_reuse.overlap_reuse_active);
  // No CachingPairScorer is ever constructed when reuse is off: the cache
  // counters are absent (0), not counters of a cache that saw no traffic.
  for (const auto& config : no_reuse.per_config) {
    EXPECT_EQ(config.cache_hits, 0u);
    EXPECT_EQ(config.cache_misses, 0u);
  }

  options.reuse_min_avg_tokens = 0.0;
  JointResult with_reuse = RunJointTopKJoins(corpus, tree, options);
  EXPECT_TRUE(with_reuse.overlap_reuse_active);
  // Some child config must have hit the cache.
  size_t total_hits = 0;
  for (const auto& config : with_reuse.per_config) {
    total_hits += config.cache_hits;
  }
  EXPECT_GT(total_hits, 0u);
}

TEST(JointExecutorTest, SequentialChildrenAreSeeded) {
  Rng rng(88);
  auto [a, b] = RandomThreeAttrTables(rng, 30);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  ConfigTree tree = GenerateConfigTree(attrs);

  JointOptions options;
  options.k = 10;
  options.num_threads = 1;  // BFS order: parents always finish first.
  options.reuse_topk = true;
  JointResult result = RunJointTopKJoins(corpus, tree, options);
  for (size_t i = 1; i < result.per_config.size(); ++i) {
    EXPECT_TRUE(result.per_config[i].seeded_from_parent) << "node " << i;
  }
}

TEST(JointExecutorTest, AutoQRuns) {
  Rng rng(99);
  auto [a, b] = RandomThreeAttrTables(rng, 30);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  ConfigTree tree = GenerateConfigTree(attrs);
  JointOptions options;
  options.k = 10;
  options.q = 0;  // Race.
  options.num_threads = 2;
  JointResult result = RunJointTopKJoins(corpus, tree, options);
  EXPECT_GE(result.q_used, 1u);
  EXPECT_LE(result.q_used, 4u);
  EXPECT_EQ(result.per_config.size(), tree.size());
}

// --------------------------------------------------------------------------
// Fault tolerance: deadlines, cancellation, and injected task failures
// (docs/robustness.md).
// --------------------------------------------------------------------------

PromisingAttributes ThreeColumnAttrs() {
  PromisingAttributes attrs;
  attrs.columns = {0, 1, 2};
  attrs.e_scores = {0.9, 0.4, 0.6};
  attrs.avg_len_a = {2, 1, 3};
  attrs.avg_len_b = {2, 1, 3};
  return attrs;
}

TEST(JointFaultToleranceTest, DeadlineTruncatesButPartialListsFeedVerifier) {
  // A corpus big enough that the joint run cannot finish inside 50ms: the
  // Amazon-Google-style generator at full Table 1 dims, long descriptions.
  datagen::GeneratedDataset data = datagen::GenerateAmazonGoogle();
  SsjCorpus corpus =
      SsjCorpus::Build(data.table_a, data.table_b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  JointOptions options;
  options.k = 1000;
  options.num_threads = 4;
  options.run_context = RunContext::WithDeadline(50);

  Stopwatch watch;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  double elapsed_ms = watch.ElapsedSeconds() * 1000.0;

  EXPECT_TRUE(joint.truncated);
  EXPECT_TRUE(joint.task_error.ok()) << joint.task_error.ToString();
  ASSERT_EQ(joint.per_config.size(), tree.size());
  bool any_incomplete = false;
  for (const ConfigJoinResult& config : joint.per_config) {
    if (!config.completed) any_incomplete = true;
    EXPECT_LE(config.topk.size(), options.k);
  }
  EXPECT_TRUE(any_incomplete);

  // The join must return shortly after the deadline, not run to completion.
  // Sanitizer builds run the join an order of magnitude slower, so the
  // bound is loosened there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  EXPECT_LT(elapsed_ms, 10000.0);
#else
  EXPECT_LT(elapsed_ms, 1000.0);
#endif

  // Graceful degradation: the best-so-far lists are valid verifier input.
  std::vector<std::vector<ScoredPair>> lists;
  for (const ConfigJoinResult& config : joint.per_config) {
    lists.push_back(config.topk);
  }
  PairFeatureExtractor extractor(&data.table_a, &data.table_b);
  MatchVerifier verifier(std::move(lists), &extractor, VerifierOptions{});
  std::vector<PairId> batch = verifier.NextBatch();
  EXPECT_LE(batch.size(), VerifierOptions{}.pairs_per_iteration);
}

TEST(JointFaultToleranceTest, CancelledBeforeStartSkipsEveryConfig) {
  Rng rng(55);
  auto [a, b] = RandomThreeAttrTables(rng, 30);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  RunContext context = RunContext::Cancellable();
  context.Cancel();
  JointOptions options;
  options.k = 10;
  options.num_threads = 1;
  options.run_context = context;

  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  EXPECT_TRUE(joint.truncated);
  ASSERT_EQ(joint.per_config.size(), tree.size());
  for (const ConfigJoinResult& config : joint.per_config) {
    EXPECT_FALSE(config.completed);
    EXPECT_TRUE(config.topk.empty());
  }
}

TEST(JointFaultToleranceTest, NoDeadlineRunMatchesSeedBehavior) {
  // An inert (default) run context must leave results identical to a run
  // with no context plumbing at all — the byte-identical contract.
  Rng rng(101);
  auto [a, b] = RandomThreeAttrTables(rng, 50);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  JointOptions options;
  options.k = 25;
  options.num_threads = 1;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);
  EXPECT_FALSE(joint.truncated);
  EXPECT_TRUE(joint.task_error.ok());
  for (const ConfigJoinResult& config : joint.per_config) {
    EXPECT_TRUE(config.completed);
    EXPECT_FALSE(config.stats.truncated);
  }
}

class JointTaskFaultTest : public ::testing::TestWithParam<size_t> {
  void TearDown() override { FaultRegistry::Instance().Reset(); }
};

TEST_P(JointTaskFaultTest, ThrowingConfigTaskIsCapturedNotFatal) {
  const size_t num_threads = GetParam();
  Rng rng(66);
  auto [a, b] = RandomThreeAttrTables(rng, 30);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0, 1, 2});
  ConfigTree tree = GenerateConfigTree(ThreeColumnAttrs());

  FaultRegistry::Instance().Reset();
  FaultRegistry::Instance().ArmNthHit("joint/run_node", FaultKind::kThrow, 1);

  JointOptions options;
  options.k = 10;
  options.num_threads = num_threads;
  JointResult joint = RunJointTopKJoins(corpus, tree, options);

  // Exactly one config task threw; it is captured as a typed error, the
  // workers survive, and every other config still ran to completion.
  EXPECT_EQ(joint.task_error.code(), StatusCode::kInternal);
  // Sequential runs report "config task threw ..."; pooled runs surface the
  // pool boundary's "pool task threw ...". Both carry the injected message.
  EXPECT_NE(joint.task_error.message().find("task threw"), std::string::npos)
      << joint.task_error.ToString();
  EXPECT_NE(joint.task_error.message().find("joint/run_node"),
            std::string::npos)
      << joint.task_error.ToString();
  EXPECT_TRUE(joint.truncated);
  size_t incomplete = 0;
  for (const ConfigJoinResult& config : joint.per_config) {
    if (!config.completed) {
      ++incomplete;
      EXPECT_TRUE(config.topk.empty());
    }
  }
  EXPECT_EQ(incomplete, 1u);
}

INSTANTIATE_TEST_SUITE_P(Threads, JointTaskFaultTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace mc
