#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "rank/rank_aggregation.h"

namespace mc {
namespace {

PairId P(RowId b) { return MakePairId(0, b); }

TEST(CompetitionRanksTest, PaperExample) {
  // L1 of Example 5.1: a:1.0, b:0.8, c:0.8, d:0.6 -> ranks 1, 2, 2, 4.
  std::vector<ScoredPair> list{
      {P(0), 1.0}, {P(1), 0.8}, {P(2), 0.8}, {P(3), 0.6}};
  std::vector<uint32_t> ranks = CompetitionRanks(list);
  EXPECT_EQ(ranks, (std::vector<uint32_t>{1, 2, 2, 4}));
}

TEST(CompetitionRanksTest, AllDistinctAndAllTied) {
  std::vector<ScoredPair> distinct{{P(0), 0.9}, {P(1), 0.5}, {P(2), 0.1}};
  EXPECT_EQ(CompetitionRanks(distinct), (std::vector<uint32_t>{1, 2, 3}));
  std::vector<ScoredPair> tied{{P(0), 0.5}, {P(1), 0.5}, {P(2), 0.5}};
  EXPECT_EQ(CompetitionRanks(tied), (std::vector<uint32_t>{1, 1, 1}));
  EXPECT_TRUE(CompetitionRanks({}).empty());
}

// The three lists of paper Example 5.1 / Figure 8. Items a,b,c,d = P(0..3).
std::vector<std::vector<ScoredPair>> PaperLists() {
  return {
      {{P(0), 1.0}, {P(1), 0.8}, {P(2), 0.8}, {P(3), 0.6}},  // L1.
      {{P(0), 0.9}, {P(2), 0.7}, {P(3), 0.6}},               // L2 (no b).
      {{P(1), 0.8}, {P(0), 0.5}, {P(2), 0.3}, {P(3), 0.2}},  // L3.
  };
}

TEST(MedRankTest, PaperFigureEight) {
  // Paper: global ranks a=1, b=2 (ranks 2,4,1 -> median 2), c, d follow.
  RankAggregator aggregator(PaperLists(), 1);
  std::vector<PairId> order = aggregator.MedRank();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], P(0));  // a.
  EXPECT_EQ(order[1], P(1));  // b.
  EXPECT_EQ(order[2], P(2));  // c (ranks 2,2,3 -> median 2... see below).
  EXPECT_EQ(order[3], P(3));  // d (ranks 4,3,4 -> median 4).
}

TEST(MedRankTest, MissingItemGetsLengthPlusOneRank) {
  // b is missing from L2 (length 3) -> rank 4 there, as in the paper.
  RankAggregator aggregator(PaperLists(), 1);
  ASSERT_EQ(aggregator.items().size(), 4u);
  // b's ranks are 2, 4, 1; lower median = 2. c's ranks are 2, 2, 3 ->
  // median 2 as well; tie is broken randomly, but with this seed the
  // ordering above holds; what we verify robustly is that a is always first
  // and d always last.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RankAggregator fresh(PaperLists(), seed);
    std::vector<PairId> order = fresh.MedRank();
    EXPECT_EQ(order[0], P(0));
    EXPECT_EQ(order[3], P(3));
  }
}

TEST(MedRankTest, SingleList) {
  RankAggregator aggregator({{{P(5), 0.9}, {P(6), 0.2}}}, 3);
  std::vector<PairId> order = aggregator.MedRank();
  EXPECT_EQ(order, (std::vector<PairId>{P(5), P(6)}));
}

TEST(WeightedMedRankTest, UniformWeightsKeepTopItem) {
  RankAggregator aggregator(PaperLists(), 2);
  std::vector<PairId> order =
      aggregator.WeightedMedRank({1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_EQ(order[0], P(0));
}

TEST(WeightedMedRankTest, HeavyListDominates) {
  // Give L3 (which ranks b first) nearly all the weight.
  RankAggregator aggregator(PaperLists(), 2);
  std::vector<PairId> order = aggregator.WeightedMedRank({0.01, 0.01, 0.98});
  EXPECT_EQ(order[0], P(1));  // b leads L3.
}

TEST(MatchesPerListTest, CountsPresence) {
  RankAggregator aggregator(PaperLists(), 2);
  CandidateSet matches;
  matches.Add(P(1));  // b: in L1 and L3 only.
  matches.Add(P(3));  // d: in all three.
  std::vector<size_t> counts = aggregator.MatchesPerList(matches);
  EXPECT_EQ(counts, (std::vector<size_t>{2, 1, 2}));
}

TEST(WmrWeightsTest, UpdateFavorsListsWithMatches) {
  RankAggregator aggregator(PaperLists(), 2);
  WmrWeights weights(3);
  EXPECT_DOUBLE_EQ(weights.weights()[0], 1.0 / 3);
  CandidateSet matches;
  matches.Add(P(1));
  weights.Update(aggregator, matches);
  // L1 and L3 contain b; their weights must now exceed L2's.
  EXPECT_GT(weights.weights()[0], weights.weights()[1]);
  EXPECT_GT(weights.weights()[2], weights.weights()[1]);
  // Normalized.
  double total = weights.weights()[0] + weights.weights()[1] +
                 weights.weights()[2];
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(WmrWeightsTest, EmptyMatchSetKeepsRelativeWeights) {
  RankAggregator aggregator(PaperLists(), 2);
  WmrWeights weights(3);
  weights.Update(aggregator, CandidateSet());
  EXPECT_NEAR(weights.weights()[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(weights.weights()[1], 1.0 / 3, 1e-12);
}

TEST(RankAggregatorTest, ItemsAreUnionOfLists) {
  std::vector<std::vector<ScoredPair>> lists{
      {{P(0), 0.9}, {P(1), 0.8}},
      {{P(1), 0.7}, {P(2), 0.6}},
  };
  RankAggregator aggregator(lists, 1);
  EXPECT_EQ(aggregator.items().size(), 3u);
}

TEST(RankAggregatorTest, TieBreakIsSeededAndStable) {
  // Two items tied in every list; different seeds may order them
  // differently, but the same seed must give the same order.
  std::vector<std::vector<ScoredPair>> lists{
      {{P(0), 0.5}, {P(1), 0.5}},
  };
  RankAggregator x(lists, 123);
  RankAggregator y(lists, 123);
  EXPECT_EQ(x.MedRank(), y.MedRank());
}

}  // namespace
}  // namespace mc
