#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/metrics.h"
#include "datagen/corruption.h"
#include "datagen/generator.h"
#include "datagen/vocabulary.h"
#include "text/similarity.h"
#include "util/random.h"

namespace mc {
namespace {

using datagen::DatasetDims;
using datagen::GeneratedDataset;

TEST(CorruptionTest, TypoChangesAtMostOneEdit) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string original = "charles williams";
    std::string corrupted = datagen::InjectTypo(original, rng);
    EXPECT_LE(EditDistance(original, corrupted), 2u);  // Swap = 2 edits.
  }
}

TEST(CorruptionTest, AbbreviateWord) {
  Rng rng(2);
  std::string out = datagen::AbbreviateWord("david smith", rng);
  EXPECT_TRUE(out == "d. smith" || out == "david s.") << out;
}

TEST(CorruptionTest, DropAndSwap) {
  Rng rng(3);
  EXPECT_EQ(datagen::DropWord("single", rng), "single");
  std::string dropped = datagen::DropWord("alpha beta", rng);
  EXPECT_TRUE(dropped == "alpha" || dropped == "beta");
  EXPECT_EQ(datagen::SwapWords("alpha beta", rng), "beta alpha");
  EXPECT_EQ(datagen::SwapWords("one", rng), "one");
}

TEST(CorruptionTest, CaseOperations) {
  Rng rng(4);
  EXPECT_EQ(datagen::UpperCase("love song"), "LOVE SONG");
  std::string jumbled = datagen::JumbleCase("love song", rng);
  // Same letters ignoring case.
  EXPECT_EQ(datagen::UpperCase(jumbled), "LOVE SONG");
}

TEST(CorruptionTest, VariantsRoundTrip) {
  EXPECT_EQ(datagen::ApplyVariant("new york"), "ny");
  EXPECT_EQ(datagen::ApplyVariant("ny"), "new york");
  EXPECT_EQ(datagen::ApplyVariant("123 main street"), "123 main st");
  EXPECT_EQ(datagen::ApplyVariant("no variant here at all"),
            "no variant here at all");
}

TEST(CorruptionTest, PerturbNumberWithinJitter) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string out = datagen::PerturbNumber(100.0, 0.3, rng);
    double value = ParseDouble(out).value();
    EXPECT_GE(value, 69.9);
    EXPECT_LE(value, 130.1);
  }
}

TEST(VocabularyTest, VariantLookupAndJoin) {
  EXPECT_EQ(datagen::ValueVariant("hewlett packard"), "hp");
  EXPECT_EQ(datagen::ValueVariant("zzz"), "");
  EXPECT_EQ(datagen::JoinWords({"a", "b", "c"}), "a b c");
  EXPECT_EQ(datagen::JoinWords({}), "");
}

struct NamedDims {
  const char* name;
  DatasetDims dims;
  size_t expected_attrs;
};

class GeneratorTest : public ::testing::TestWithParam<NamedDims> {};

TEST_P(GeneratorTest, ShapeAndGoldInvariants) {
  const NamedDims& param = GetParam();
  Result<GeneratedDataset> result =
      datagen::GenerateByName(param.name, /*scale=*/1.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GeneratedDataset& dataset = result.value();

  EXPECT_EQ(dataset.table_a.num_rows(), param.dims.rows_a);
  EXPECT_EQ(dataset.table_b.num_rows(), param.dims.rows_b);
  EXPECT_EQ(dataset.gold.size(), param.dims.matches);
  EXPECT_EQ(dataset.table_a.schema().size(), param.expected_attrs);
  EXPECT_TRUE(dataset.table_a.schema() == dataset.table_b.schema());

  // Gold pairs reference valid rows; at most one match per A row (1-1).
  std::unordered_set<RowId> rows_a, rows_b;
  for (PairId pair : dataset.gold) {
    RowId row_a = PairRowA(pair);
    RowId row_b = PairRowB(pair);
    EXPECT_LT(row_a, dataset.table_a.num_rows());
    EXPECT_LT(row_b, dataset.table_b.num_rows());
    EXPECT_TRUE(rows_a.insert(row_a).second);
    EXPECT_TRUE(rows_b.insert(row_b).second);
  }

  // Problem tags only refer to gold pairs.
  for (const auto& [pair, tags] : dataset.problem_tags) {
    EXPECT_TRUE(dataset.gold.Contains(pair));
    EXPECT_FALSE(tags.empty());
  }
  EXPECT_GT(dataset.problem_tags.size(), 0u);
}

TEST_P(GeneratorTest, MatchedPairsAreTextuallyClose) {
  const NamedDims& param = GetParam();
  Result<GeneratedDataset> result = datagen::GenerateByName(param.name, 1.0);
  ASSERT_TRUE(result.ok());
  const GeneratedDataset& dataset = result.value();
  // Average word-jaccard of the concatenated records over gold pairs should
  // far exceed that of random pairs.
  auto record_text = [](const Table& table, size_t row) {
    std::string text;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      text += std::string(table.Value(row, c)) + " ";
    }
    return text;
  };
  double gold_sim = 0.0;
  size_t count = 0;
  for (PairId pair : dataset.gold) {
    if (count == 50) break;
    gold_sim += WordJaccard(record_text(dataset.table_a, PairRowA(pair)),
                            record_text(dataset.table_b, PairRowB(pair)));
    ++count;
  }
  gold_sim /= count;

  Rng rng(17);
  double random_sim = 0.0;
  for (int i = 0; i < 50; ++i) {
    random_sim += WordJaccard(
        record_text(dataset.table_a,
                    rng.NextBelow(dataset.table_a.num_rows())),
        record_text(dataset.table_b,
                    rng.NextBelow(dataset.table_b.num_rows())));
  }
  random_sim /= 50;
  EXPECT_GT(gold_sim, random_sim + 0.15)
      << param.name << ": gold " << gold_sim << " random " << random_sim;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, GeneratorTest,
    ::testing::Values(
        NamedDims{"A-G", datagen::kDimsAmazonGoogle, 5},
        NamedDims{"W-A", datagen::kDimsWalmartAmazon, 7},
        NamedDims{"A-D", datagen::kDimsAcmDblp, 5},
        NamedDims{"F-Z", datagen::kDimsFodorsZagats, 7}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GeneratorTest, MusicScalesAndNames) {
  Result<GeneratedDataset> m1 = datagen::GenerateByName("M1", 0.02);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->name, "M1");
  EXPECT_EQ(m1->table_a.num_rows(), 2000u);
  EXPECT_EQ(m1->table_a.schema().size(), 8u);

  Result<GeneratedDataset> papers = datagen::GenerateByName("Papers", 0.005);
  ASSERT_TRUE(papers.ok());
  EXPECT_EQ(papers->name, "Papers");
  EXPECT_EQ(papers->table_a.schema().size(), 7u);
}

TEST(GeneratorTest, Deterministic) {
  GeneratedDataset x = datagen::GenerateFodorsZagats();
  GeneratedDataset y = datagen::GenerateFodorsZagats();
  ASSERT_EQ(x.table_a.num_rows(), y.table_a.num_rows());
  for (size_t r = 0; r < x.table_a.num_rows(); ++r) {
    for (size_t c = 0; c < x.table_a.num_columns(); ++c) {
      ASSERT_EQ(x.table_a.Value(r, c), y.table_a.Value(r, c));
    }
  }
  EXPECT_EQ(x.gold.size(), y.gold.size());
}

TEST(GeneratorTest, UnknownNameIsError) {
  Result<GeneratedDataset> result = datagen::GenerateByName("nope");
  EXPECT_FALSE(result.ok());
}

TEST(GeneratorTest, ProblemHistogramSorted) {
  GeneratedDataset dataset = datagen::GenerateFodorsZagats();
  auto histogram = dataset.ProblemHistogram();
  EXPECT_FALSE(histogram.empty());
  for (size_t i = 1; i < histogram.size(); ++i) {
    EXPECT_GE(histogram[i - 1].second, histogram[i].second);
  }
}

TEST(GeneratorTest, ScaleDims) {
  DatasetDims dims{1000, 2000, 100};
  DatasetDims half = datagen::ScaleDims(dims, 0.5);
  EXPECT_EQ(half.rows_a, 500u);
  EXPECT_EQ(half.rows_b, 1000u);
  EXPECT_EQ(half.matches, 50u);
  DatasetDims tiny = datagen::ScaleDims(dims, 0.00001);
  EXPECT_EQ(tiny.rows_a, 1u);
  EXPECT_EQ(tiny.matches, 1u);
}

}  // namespace
}  // namespace mc
