// Randomized delta-equivalence suite: every incrementally patched artifact
// — text plane, SSJ corpus, per-config top-k lists, and the service's
// shared planes — must be content-identical to rebuilding from scratch on
// the mutated tables, across seeded random delta schedules, at 1 and N
// threads, and under injected faults mid-patch (a failed patch leaves the
// prior generation intact). Run under ASan/TSan by the ci.sh
// `delta-equivalence` stage; override the seed matrix with MC_DELTA_SEED.

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_generator.h"
#include "core/match_catcher.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "joint/joint_repair.h"
#include "service/session_manager.h"
#include "ssj/corpus.h"
#include "table/table_delta.h"
#include "table/tokenized_table.h"
#include "util/fault_injection.h"
#include "util/random.h"

namespace mc {
namespace {

datagen::GeneratedDataset SmallDataset(uint64_t seed = 47) {
  return datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.12), seed);
}

std::vector<uint64_t> SeedMatrix() {
  if (const char* env = std::getenv("MC_DELTA_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 10))};
  }
  return {3, 11, 29};
}

// One random delta against `table`: a few mutated rows (fresh tokens, value
// swaps, cleared cells), some appends, an occasional tombstone. Exercises
// every edit kind the patchers distinguish.
TableDelta RandomDelta(const Table& table, uint8_t side, size_t generation,
                       Rng& rng) {
  TableDelta delta;
  delta.side = side;
  const size_t rows = table.num_rows();
  const size_t cols = table.num_columns();
  auto row_values = [&](size_t row) {
    std::vector<std::string> values;
    values.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      values.emplace_back(table.Value(row, c));
    }
    return values;
  };
  std::vector<uint32_t> used;
  auto fresh_row = [&]() -> std::optional<uint32_t> {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const uint32_t row = static_cast<uint32_t>(rng.NextBelow(rows));
      bool seen = false;
      for (uint32_t u : used) seen = seen || u == row;
      if (!seen) {
        used.push_back(row);
        return row;
      }
    }
    return std::nullopt;
  };
  const size_t mutations = 1 + rng.NextBelow(3);
  for (size_t m = 0; m < mutations; ++m) {
    std::optional<uint32_t> row = fresh_row();
    if (!row.has_value()) break;
    TableDelta::RowEdit edit;
    edit.row = *row;
    edit.values = row_values(*row);
    const size_t column = rng.NextBelow(cols);
    switch (rng.NextBelow(3)) {
      case 0:  // Fresh tokens: grows the dictionary past the base build.
        edit.values[column] +=
            " delta" + std::to_string(generation) + "tok" + std::to_string(m);
        break;
      case 1:  // Existing tokens from another row: df shifts, no growth.
        edit.values[column] = row_values(rng.NextBelow(rows))[column];
        break;
      default:  // Cleared cell: tokens retire, the cell goes missing.
        edit.values[column] = "";
        break;
    }
    delta.mutated.push_back(std::move(edit));
  }
  if (rng.NextBool(0.7)) {
    std::vector<std::string> appended = row_values(rng.NextBelow(rows));
    appended[0] += " appended" + std::to_string(generation);
    delta.appended.push_back(std::move(appended));
  }
  if (rng.NextBool(0.4)) {
    std::optional<uint32_t> victim = fresh_row();
    if (victim.has_value()) delta.deleted.push_back(*victim);
  }
  return delta;
}

void ExpectListsEqual(const std::vector<std::vector<ScoredPair>>& got,
                      const std::vector<std::vector<ScoredPair>>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << label << " list " << i;
    for (size_t e = 0; e < want[i].size(); ++e) {
      EXPECT_EQ(got[i][e].pair, want[i][e].pair)
          << label << " list " << i << " entry " << e;
      EXPECT_DOUBLE_EQ(got[i][e].score, want[i][e].score)
          << label << " list " << i << " entry " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Text plane: patched CSR arenas == from-scratch rebuild, bit for bit.

TEST(DeltaEquivalenceTest, PlanePatchMatchesRebuildAcrossRandomSchedules) {
  datagen::GeneratedDataset dataset = SmallDataset();
  for (const uint64_t seed : SeedMatrix()) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      Rng rng(seed);
      Table table_a = dataset.table_a;
      Table table_b = dataset.table_b;
      TextPlaneBuildOptions options;
      options.num_threads = threads;
      std::shared_ptr<const TokenizedTable> plane =
          TokenizedTable::Build(table_a, table_b, options);
      ASSERT_FALSE(plane->truncated());
      for (size_t generation = 1; generation <= 5; ++generation) {
        const uint8_t side = static_cast<uint8_t>(generation % 2);
        const Table& target = side == 0 ? table_a : table_b;
        const TableDelta delta =
            RandomDelta(target, side, generation, rng);
        const size_t base_rows = target.num_rows();
        ASSERT_TRUE(
            ApplyDeltaToTable(side == 0 ? table_a : table_b, delta).ok());
        Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        std::shared_ptr<const TokenizedTable> patched =
            TokenizedTable::ApplyDelta(*plane, table_a, table_b, *rows,
                                       options);
        ASSERT_NE(patched, nullptr)
            << "seed " << seed << " generation " << generation;
        std::shared_ptr<const TokenizedTable> rebuilt =
            TokenizedTable::Build(table_a, table_b, options);
        ASSERT_FALSE(rebuilt->truncated());
        EXPECT_EQ(patched->ContentCrc(), rebuilt->ContentCrc())
            << "seed " << seed << " threads " << threads << " generation "
            << generation;
        EXPECT_EQ(rebuilt->dead_tokens(), 0u);
        plane = std::move(patched);  // Patches compound across generations.
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SSJ corpus: patched rank/mask arenas == from-scratch rebuild.

TEST(DeltaEquivalenceTest, CorpusPatchMatchesRebuildAcrossRandomSchedules) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  ASSERT_TRUE(attributes.ok()) << attributes.status().ToString();
  const std::vector<size_t> columns = attributes->columns;

  for (const uint64_t seed : SeedMatrix()) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      Rng rng(seed ^ 0x9e3779b9);
      Table table_a = dataset.table_a;
      Table table_b = dataset.table_b;
      CorpusBuildOptions options;
      options.num_threads = threads;
      auto corpus = std::make_shared<SsjCorpus>(
          SsjCorpus::Build(table_a, table_b, columns, options));
      ASSERT_FALSE(corpus->truncated());
      for (size_t generation = 1; generation <= 5; ++generation) {
        const uint8_t side = static_cast<uint8_t>((generation + 1) % 2);
        const Table& target = side == 0 ? table_a : table_b;
        const TableDelta delta =
            RandomDelta(target, side, generation, rng);
        const size_t base_rows = target.num_rows();
        ASSERT_TRUE(
            ApplyDeltaToTable(side == 0 ? table_a : table_b, delta).ok());
        Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        std::optional<SsjCorpus> patched = SsjCorpus::ApplyDelta(
            *corpus, table_a, table_b, columns, *rows, options);
        ASSERT_TRUE(patched.has_value())
            << "seed " << seed << " generation " << generation;
        const SsjCorpus rebuilt =
            SsjCorpus::Build(table_a, table_b, columns, options);
        ASSERT_FALSE(rebuilt.truncated());
        EXPECT_EQ(patched->ContentCrc(), rebuilt.ContentCrc())
            << "seed " << seed << " threads " << threads << " generation "
            << generation;
        corpus = std::make_shared<SsjCorpus>(*std::move(patched));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Top-k lists: RepairJointLists == rerunning the joint joins over a rebuilt
// corpus with the same config tree.

TEST(DeltaEquivalenceTest, JointRepairMatchesRerunOverRebuiltCorpus) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  ASSERT_TRUE(attributes.ok()) << attributes.status().ToString();
  const std::vector<size_t> columns = attributes->columns;
  const ConfigTree tree = GenerateConfigTree(*attributes, config_options);

  JointOptions joint_options;
  joint_options.k = 25;
  joint_options.num_threads = 2;
  joint_options.exclude = &dataset.gold;

  for (const uint64_t seed : SeedMatrix()) {
    Rng rng(seed ^ 0x5bd1e995);
    Table table_a = dataset.table_a;
    Table table_b = dataset.table_b;
    auto corpus = std::make_shared<SsjCorpus>(
        SsjCorpus::Build(table_a, table_b, columns));
    JointResult joint = RunJointTopKJoins(*corpus, tree, joint_options);
    ASSERT_FALSE(joint.truncated);

    JointListsSnapshot snapshot;
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      snapshot.configs.push_back(tree.nodes[i].mask);
      snapshot.parents.push_back(tree.nodes[i].parent);
      snapshot.seeded.push_back(joint.per_config[i].seeded_from_parent ? 1
                                                                      : 0);
      snapshot.lists.push_back(joint.per_config[i].topk);
    }
    snapshot.k = joint_options.k;
    snapshot.measure = joint_options.measure;
    snapshot.q_used = joint.q_used;

    for (size_t generation = 1; generation <= 4; ++generation) {
      const uint8_t side = static_cast<uint8_t>(generation % 2);
      const Table& target = side == 0 ? table_a : table_b;
      const TableDelta delta = RandomDelta(target, side, generation, rng);
      const size_t base_rows = target.num_rows();
      ASSERT_TRUE(
          ApplyDeltaToTable(side == 0 ? table_a : table_b, delta).ok());
      Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
      ASSERT_TRUE(rows.ok());

      std::optional<SsjCorpus> patched =
          SsjCorpus::ApplyDelta(*corpus, table_a, table_b, columns, *rows);
      ASSERT_TRUE(patched.has_value());
      corpus = std::make_shared<SsjCorpus>(*std::move(patched));

      std::vector<RowId> touched_a;
      std::vector<RowId> touched_b;
      std::vector<RowId>& touched = side == 0 ? touched_a : touched_b;
      touched.assign(rows->touched.begin(), rows->touched.end());
      for (size_t i = 0; i < rows->appended; ++i) {
        touched.push_back(static_cast<RowId>(rows->base_rows + i));
      }
      JointRepairOptions repair_options;
      repair_options.exclude = &dataset.gold;
      JointRepairStats repair_stats;
      const std::vector<std::vector<ScoredPair>> repaired = RepairJointLists(
          *corpus, snapshot, touched_a, touched_b, repair_options,
          &repair_stats);

      // Ground truth: the same joins over a from-scratch corpus.
      const SsjCorpus rebuilt =
          SsjCorpus::Build(table_a, table_b, columns);
      JointResult rerun = RunJointTopKJoins(rebuilt, tree, joint_options);
      ASSERT_FALSE(rerun.truncated);
      std::vector<std::vector<ScoredPair>> want;
      for (const ConfigJoinResult& result : rerun.per_config) {
        want.push_back(result.topk);
      }
      ExpectListsEqual(repaired, want,
                       "seed " + std::to_string(seed) + " generation " +
                           std::to_string(generation));
      EXPECT_EQ(TopKListsCrc(repaired), TopKListsCrc(want));
      EXPECT_EQ(repair_stats.configs_repaired + repair_stats.configs_rejoined,
                tree.nodes.size());

      // Next generation repairs on top of this one, exactly like the
      // service's cached snapshot.
      snapshot.lists = repaired;
      snapshot.q_used = rerun.q_used;
    }
  }
}

// ---------------------------------------------------------------------------
// Service: ApplyTableDelta patches the shared planes; sessions on the
// patched pair are bit-identical to a fresh isolated session on the
// mutated tables, and the cached lists track the repairs.

TEST(DeltaEquivalenceTest, ServiceDeltaMatchesFreshSessionOnMutatedTables) {
  datagen::GeneratedDataset dataset = SmallDataset();
  Table table_a = dataset.table_a;  // Mirror of the service's tables.
  Table table_b = dataset.table_b;

  MatchCatcherOptions options;
  options.joint.k = 25;
  options.joint.num_threads = 2;
  // Keep the schema fixed so the config tree the first session caches can
  // be reconstructed here as the ground truth for the repaired lists.
  options.infer_types = false;

  // The cached snapshot repairs the configs the FIRST session ran — later
  // sessions may select a drifted tree from the mutated tables, so the
  // cache's ground truth is a rerun of the original tree, not the fresh
  // session's lists.
  Result<PromisingAttributes> base_attributes =
      SelectPromisingAttributes(table_a, table_b, options.config);
  ASSERT_TRUE(base_attributes.ok()) << base_attributes.status().ToString();
  const std::vector<size_t> base_columns = base_attributes->columns;
  const ConfigTree base_tree =
      GenerateConfigTree(*base_attributes, options.config);
  JointOptions rerun_options = options.joint;
  rerun_options.exclude = &dataset.gold;

  ServiceLimits limits;
  limits.max_concurrent_sessions = 2;
  SessionManager manager(limits);
  ASSERT_TRUE(
      manager.RegisterTablePair("fz", table_a, table_b, dataset.gold).ok());

  SessionRequest request;
  request.pair_key = "fz";
  request.options = options;

  // First session: builds and caches plane, corpus, and repairable lists.
  Result<uint64_t> first = manager.Submit(request);
  ASSERT_TRUE(first.ok());
  Result<SessionOutcome> first_outcome = manager.Wait(*first);
  ASSERT_TRUE(first_outcome.ok());
  ASSERT_EQ(first_outcome->state, SessionState::kComplete);
  EXPECT_EQ(first_outcome->plane_generation, 1u);
  Result<std::vector<std::vector<ScoredPair>>> cached =
      manager.CachedTopKLists("fz");
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ExpectListsEqual(*cached, first_outcome->lists, "initial cache");

  Rng rng(101);
  for (size_t generation = 1; generation <= 3; ++generation) {
    const uint8_t side = static_cast<uint8_t>(generation % 2);
    const TableDelta delta = RandomDelta(side == 0 ? table_a : table_b,
                                         side, generation, rng);
    ASSERT_TRUE(
        ApplyDeltaToTable(side == 0 ? table_a : table_b, delta).ok());
    const Status applied = manager.ApplyTableDelta("fz", delta);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    Result<uint64_t> pair_generation = manager.PairGeneration("fz");
    ASSERT_TRUE(pair_generation.ok());
    EXPECT_EQ(*pair_generation, generation + 1);

    // A fresh isolated session over the mutated tables is the ground
    // truth for everything the service now serves.
    Result<DebugSession> isolated =
        DebugSession::Create(table_a, table_b, dataset.gold, options);
    ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
    const std::vector<std::vector<ScoredPair>> want = isolated->TopKLists();

    Result<uint64_t> id = manager.Submit(request);
    ASSERT_TRUE(id.ok());
    Result<SessionOutcome> outcome = manager.Wait(*id);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->state, SessionState::kComplete)
        << outcome->status.ToString();
    EXPECT_EQ(outcome->plane_generation, generation + 1);
    ExpectListsEqual(outcome->lists, want,
                     "post-delta session, generation " +
                         std::to_string(generation + 1));

    // The repaired cache must equal rerunning the ORIGINAL config tree
    // over a from-scratch corpus on the mutated tables.
    const SsjCorpus rebuilt =
        SsjCorpus::Build(table_a, table_b, base_columns);
    JointResult rerun = RunJointTopKJoins(rebuilt, base_tree, rerun_options);
    ASSERT_FALSE(rerun.truncated);
    std::vector<std::vector<ScoredPair>> cache_want;
    for (const ConfigJoinResult& result : rerun.per_config) {
      cache_want.push_back(result.topk);
    }
    cached = manager.CachedTopKLists("fz");
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(TopKListsCrc(*cached), TopKListsCrc(cache_want))
        << "cached lists diverged at generation " << generation + 1;
  }

  const ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.deltas_applied, 3u);
  EXPECT_EQ(stats.delta_failures, 0u);
  EXPECT_EQ(stats.planes_patched, 3u);
  EXPECT_EQ(stats.corpora_patched, 3u);
  EXPECT_GT(stats.lists_repaired + stats.lists_rejoined, 0u);
}

// ---------------------------------------------------------------------------
// Faults mid-patch: a failed delta must leave the prior generation — plane,
// corpus, cached lists — intact and visible, with a typed error.

TEST(DeltaEquivalenceTest, FaultMidPatchLeavesPriorGenerationIntact) {
  datagen::GeneratedDataset dataset = SmallDataset();
  MatchCatcherOptions options;
  options.joint.k = 20;
  options.joint.num_threads = 2;

  for (const char* point :
       {"service/delta", "text_plane/apply_delta", "corpus/apply_delta"}) {
    SCOPED_TRACE(point);
    ServiceLimits limits;
    limits.max_concurrent_sessions = 2;
    SessionManager manager(limits);
    ASSERT_TRUE(manager
                    .RegisterTablePair("fz", dataset.table_a,
                                       dataset.table_b, dataset.gold)
                    .ok());
    SessionRequest request;
    request.pair_key = "fz";
    request.options = options;
    Result<uint64_t> first = manager.Submit(request);
    ASSERT_TRUE(first.ok());
    Result<SessionOutcome> first_outcome = manager.Wait(*first);
    ASSERT_TRUE(first_outcome.ok());
    ASSERT_EQ(first_outcome->state, SessionState::kComplete);
    Result<std::vector<std::vector<ScoredPair>>> before =
        manager.CachedTopKLists("fz");
    ASSERT_TRUE(before.ok());

    TableDelta delta;
    delta.side = 0;
    delta.mutated.push_back(
        {0, [&] {
           std::vector<std::string> values;
           for (size_t c = 0; c < dataset.table_a.num_columns(); ++c) {
             values.emplace_back(dataset.table_a.Value(0, c));
           }
           values[0] += " faulted";
           return values;
         }()});

    {
      ScopedFaultArm fault(point, FaultKind::kError);
      const Status applied = manager.ApplyTableDelta("fz", delta);
      EXPECT_FALSE(applied.ok());
      EXPECT_EQ(applied.code(), StatusCode::kUnavailable)
          << applied.ToString();
    }
    // Prior generation fully intact: generation number, cached lists, and
    // a session that still runs over the old planes with the old content.
    Result<uint64_t> generation = manager.PairGeneration("fz");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, 1u);
    Result<std::vector<std::vector<ScoredPair>>> after =
        manager.CachedTopKLists("fz");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(TopKListsCrc(*after), TopKListsCrc(*before));
    Result<uint64_t> id = manager.Submit(request);
    ASSERT_TRUE(id.ok());
    Result<SessionOutcome> outcome = manager.Wait(*id);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->state, SessionState::kComplete);
    EXPECT_EQ(outcome->plane_generation, 1u);
    EXPECT_EQ(TopKListsCrc(outcome->lists), TopKListsCrc(*before));

    // With the fault gone the same delta commits.
    const Status applied = manager.ApplyTableDelta("fz", delta);
    EXPECT_TRUE(applied.ok()) << applied.ToString();
    generation = manager.PairGeneration("fz");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, 2u);
    const ServiceStats stats = manager.stats();
    EXPECT_EQ(stats.delta_failures, 1u);
    EXPECT_EQ(stats.deltas_applied, 1u);
  }
}

TEST(DeltaEquivalenceTest, MalformedDeltasAreTypedAndChangeNothing) {
  datagen::GeneratedDataset dataset = SmallDataset();
  ServiceLimits limits;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());

  EXPECT_EQ(manager.ApplyTableDelta("nope", {}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager.ApplyTableDelta("fz", {}).code(),
            StatusCode::kInvalidArgument);  // Empty delta.

  TableDelta out_of_range;
  out_of_range.side = 0;
  out_of_range.deleted.push_back(
      static_cast<uint32_t>(dataset.table_a.num_rows() + 100));
  EXPECT_EQ(manager.ApplyTableDelta("fz", out_of_range).code(),
            StatusCode::kInvalidArgument);

  TableDelta bad_arity;
  bad_arity.side = 1;
  bad_arity.mutated.push_back({0, {"just one cell"}});
  EXPECT_EQ(manager.ApplyTableDelta("fz", bad_arity).code(),
            StatusCode::kInvalidArgument);

  Result<uint64_t> generation = manager.PairGeneration("fz");
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 1u);  // Nothing committed.
  EXPECT_EQ(manager.stats().delta_failures, 3u);
}

// ---------------------------------------------------------------------------
// Eviction: superseded generations reclaim first, a pair with a live
// session keeps its planes, and the eviction counters stay conserved.

TEST(ServiceEvictionTest, SupersededGenerationsReclaimBeforeLivePlanes) {
  datagen::GeneratedDataset dataset = SmallDataset();
  MatchCatcherOptions options;
  options.joint.k = 10;
  options.joint.num_threads = 1;

  ServiceLimits limits;
  limits.max_concurrent_sessions = 1;
  SessionManager manager(limits);
  ASSERT_TRUE(manager
                  .RegisterTablePair("fz", dataset.table_a, dataset.table_b,
                                     dataset.gold)
                  .ok());
  SessionRequest request;
  request.pair_key = "fz";
  request.options = options;
  Result<uint64_t> first = manager.Submit(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(manager.Wait(*first).ok());

  // Two committed deltas park two superseded generations.
  for (size_t g = 0; g < 2; ++g) {
    TableDelta delta;
    delta.side = 0;
    std::vector<std::string> values;
    for (size_t c = 0; c < dataset.table_a.num_columns(); ++c) {
      values.emplace_back(dataset.table_a.Value(0, c));
    }
    values[0] += " gen" + std::to_string(g);
    delta.mutated.push_back({0, std::move(values)});
    ASSERT_TRUE(manager.ApplyTableDelta("fz", delta).ok());
  }
  Result<uint64_t> generation = manager.PairGeneration("fz");
  ASSERT_TRUE(generation.ok());
  ASSERT_EQ(*generation, 3u);

  // max_evictions = 1 twice: both reclaims must hit the superseded list
  // (oldest generation first), never the live plane — the next session
  // still rides the cache.
  EXPECT_EQ(manager.EvictSharedPlanes(1), 1u);
  EXPECT_EQ(manager.EvictSharedPlanes(1), 1u);
  ServiceStats stats = manager.stats();
  EXPECT_EQ(stats.superseded_planes_evicted, 2u);
  EXPECT_EQ(stats.planes_evicted, 2u);

  Result<uint64_t> second = manager.Submit(request);
  ASSERT_TRUE(second.ok());
  Result<SessionOutcome> outcome = manager.Wait(*second);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, SessionState::kComplete);
  stats = manager.stats();
  EXPECT_EQ(stats.plane_cache_hits, 1u);  // Live plane survived both passes.
  EXPECT_EQ(stats.corpus_cache_hits, 1u);

  // With nothing superseded left, an unbounded eviction takes the live
  // plane (the pair is idle) — and the counters conserve: every eviction
  // the calls returned is accounted once.
  const size_t evicted = manager.EvictSharedPlanes(0);
  EXPECT_EQ(evicted, 1u);
  stats = manager.stats();
  EXPECT_EQ(stats.planes_evicted, 3u);
  EXPECT_EQ(stats.superseded_planes_evicted, 2u);
  EXPECT_FALSE(manager.CachedTopKLists("fz").ok());  // Evicted with corpus.

  // An in-flight session pins its pair: while it is building, the evictor
  // must leave the pair's live planes alone. kBuilding is set in the same
  // critical section that pins the entry, so observing it guarantees the
  // pin is held.
  Result<uint64_t> third = manager.Submit(request);
  ASSERT_TRUE(third.ok());
  bool observed_building = false;
  for (int i = 0; i < 10000; ++i) {
    Result<SessionState> state = manager.StateOf(*third);
    ASSERT_TRUE(state.ok());
    if (IsTerminalState(*state)) break;
    if (*state == SessionState::kBuilding) {
      observed_building = true;
      break;
    }
  }
  if (observed_building) {
    manager.EvictSharedPlanes(0);
    // Whatever the evictor managed, the running session's pair was pinned;
    // it still finishes with valid lists.
  }
  Result<SessionOutcome> third_outcome = manager.Wait(*third);
  ASSERT_TRUE(third_outcome.ok());
  EXPECT_TRUE(third_outcome->state == SessionState::kComplete ||
              third_outcome->state == SessionState::kTruncated);
}

}  // namespace
}  // namespace mc
