// Randomized equivalence harness for the QJoin engine: RunTopKJoin must
// match BruteForceTopK(min_overlap = q) — the exact top-k restricted to
// pairs sharing at least q tokens — across every SetMeasure, q in 1..4,
// the seeded/merged/excluded variants, and the sharded parallel mode.
// Scores must agree exactly (both sides use the same merge + count
// arithmetic); pair identity must agree everywhere except among equal-score
// ties at the boundary (k-th) score, where either engine may legitimately
// keep a different member of the tie.

#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/table.h"
#include "util/random.h"
#include "util/run_context.h"

namespace mc {
namespace {

std::pair<Table, Table> RandomTables(Rng& rng, size_t rows) {
  Schema schema({{"text", AttributeType::kString}});
  Table a(schema), b(schema);
  auto make_row = [&](Table& table) {
    std::string text;
    size_t n = 2 + rng.NextBelow(7);
    for (size_t t = 0; t < n; ++t) {
      if (t > 0) text += ' ';
      text += "w" + std::to_string(rng.NextZipf(40, 0.8));
    }
    table.AddRow({text});
  };
  for (size_t i = 0; i < rows; ++i) {
    make_row(a);
    make_row(b);
  }
  return {std::move(a), std::move(b)};
}

size_t OverlapOf(const ConfigView& view, RowId i, RowId j) {
  TokenSpan a = view.a(i);
  TokenSpan b = view.b(j);
  size_t x = 0, y = 0, overlap = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x] == b[y]) {
      ++overlap;
      ++x;
      ++y;
    } else if (a[x] < b[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  return overlap;
}

// Exact-score, boundary-tie-tolerant comparison (see file comment).
void ExpectSameTopK(const TopKList& got, const TopKList& want) {
  std::vector<ScoredPair> g = got.SortedDescending();
  std::vector<ScoredPair> w = want.SortedDescending();
  ASSERT_EQ(g.size(), w.size());
  if (w.empty()) return;
  const double boundary = w.back().score;
  for (size_t r = 0; r < g.size(); ++r) {
    ASSERT_EQ(g[r].score, w[r].score) << "rank " << r;
    if (w[r].score != boundary) {
      EXPECT_EQ(g[r].pair, w[r].pair) << "rank " << r;
    }
  }
}

// Delivers a payload on the n-th TryFetch call (a late parent list).
class DelayedMergeSource : public MergeSource {
 public:
  DelayedMergeSource(std::vector<ScoredPair> payload, int deliveries_after)
      : payload_(std::move(payload)), countdown_(deliveries_after) {}

  std::optional<std::vector<ScoredPair>> TryFetch() override {
    if (--countdown_ > 0 || delivered_) return std::nullopt;
    delivered_ = true;
    return payload_;
  }

 private:
  std::vector<ScoredPair> payload_;
  int countdown_;
  bool delivered_ = false;
};

// Cancels the join's RunContext on the n-th poll, simulating a deadline
// firing mid-run.
class CancellingMergeSource : public MergeSource {
 public:
  CancellingMergeSource(RunContext context, int cancel_on_call)
      : context_(context), countdown_(cancel_on_call) {}

  std::optional<std::vector<ScoredPair>> TryFetch() override {
    if (--countdown_ <= 0) context_.Cancel();
    return std::nullopt;
  }

 private:
  RunContext context_;
  int countdown_;
};

struct CaseName {
  template <typename ParamType>
  std::string operator()(
      const ::testing::TestParamInfo<ParamType>& info) const {
    static const char* kMeasureNames[] = {"jaccard", "cosine", "dice",
                                          "overlap"};
    return std::string(kMeasureNames[static_cast<int>(
               std::get<0>(info.param))]) +
           "_q" + std::to_string(std::get<1>(info.param));
  }
};

class SsjEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SetMeasure, size_t>> {
 protected:
  SetMeasure measure() const { return std::get<0>(GetParam()); }
  size_t q() const { return std::get<1>(GetParam()); }
};

TEST_P(SsjEquivalenceTest, MatchesBruteForce) {
  Rng rng(1000 + static_cast<uint64_t>(measure()) * 10 + q());
  auto [a, b] = RandomTables(rng, 90);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions options;
  options.k = 30;
  options.measure = measure();
  options.q = q();
  TopKList want = BruteForceTopK(view, options.k, measure(), nullptr, q());
  ExpectSameTopK(RunTopKJoin(view, options), want);
}

TEST_P(SsjEquivalenceTest, MatchesBruteForceWithExclusion) {
  Rng rng(2000 + static_cast<uint64_t>(measure()) * 10 + q());
  auto [a, b] = RandomTables(rng, 80);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  CandidateSet exclude;
  for (RowId i = 0; i < 80; i += 2) exclude.Add(i, (i * 5 + 1) % 80);
  for (RowId i = 0; i < 80; i += 3) exclude.Add(i, i);

  TopKJoinOptions options;
  options.k = 25;
  options.measure = measure();
  options.q = q();
  options.exclude = &exclude;
  TopKList want = BruteForceTopK(view, options.k, measure(), &exclude, q());
  TopKList got = RunTopKJoin(view, options);
  ExpectSameTopK(got, want);
  for (const ScoredPair& entry : got.Entries()) {
    EXPECT_FALSE(exclude.Contains(entry.pair));
  }
}

TEST_P(SsjEquivalenceTest, MatchesBruteForceSeededAndMerged) {
  Rng rng(3000 + static_cast<uint64_t>(measure()) * 10 + q());
  auto [a, b] = RandomTables(rng, 80);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  // Seed and merge payloads: exact scores for arbitrary q-eligible pairs
  // (as a parent's re-adjusted top-k would deliver). Pairs below the
  // q-overlap floor are left out so the q-restricted brute force stays the
  // ground truth.
  DirectPairScorer scorer(&view, measure());
  std::vector<ScoredPair> seed, payload;
  for (RowId i = 0; i < 80; ++i) {
    RowId j = (i * 11 + 2) % 80;
    if (OverlapOf(view, i, j) < q()) continue;
    (i % 2 == 0 ? seed : payload)
        .push_back(ScoredPair{MakePairId(i, j), scorer.Score(i, j)});
  }

  TopKJoinOptions options;
  options.k = 25;
  options.measure = measure();
  options.q = q();
  options.merge_poll_period = 64;  // Deliver the merge mid-run.
  DelayedMergeSource merge(payload, 3);
  TopKJoinStats stats;
  TopKList got = RunTopKJoin(view, options, nullptr, &seed, &merge, &stats);
  EXPECT_EQ(stats.merges_applied, 1u);
  ExpectSameTopK(got, BruteForceTopK(view, options.k, measure(), nullptr,
                                     q()));
}

TEST_P(SsjEquivalenceTest, ShardedMatchesSequentialScores) {
  Rng rng(4000 + static_cast<uint64_t>(measure()) * 10 + q());
  auto [a, b] = RandomTables(rng, 90);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions options;
  options.k = 30;
  options.measure = measure();
  options.q = q();
  TopKList want = BruteForceTopK(view, options.k, measure(), nullptr, q());
  for (size_t shards : {size_t{2}, size_t{7}}) {
    options.shards = shards;
    ExpectSameTopK(RunTopKJoin(view, options), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasuresAllQ, SsjEquivalenceTest,
    ::testing::Combine(::testing::Values(SetMeasure::kJaccard,
                                         SetMeasure::kCosine,
                                         SetMeasure::kDice,
                                         SetMeasure::kOverlapCoefficient),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                         size_t{4})),
    CaseName());

TEST(SsjCancellationTest, TruncatedJoinReturnsExactlyScoredBestSoFar) {
  Rng rng(5000);
  auto [a, b] = RandomTables(rng, 150);
  SsjCorpus corpus = SsjCorpus::Build(a, b, {0});
  ConfigView view = corpus.MakeConfigView(0b1);

  TopKJoinOptions options;
  options.k = 40;
  options.merge_poll_period = 32;  // Poll often so the cancel lands mid-run.
  options.run_context = RunContext::Cancellable();
  CancellingMergeSource cancel(options.run_context, /*cancel_on_call=*/4);
  TopKJoinStats stats;
  TopKList got = RunTopKJoin(view, options, nullptr, nullptr, &cancel,
                             &stats);

  // The run was cut mid-join: flagged truncated, and the best-so-far list
  // is a subset of the true q-eligible pair space with *exact* scores — a
  // cancelled join never returns an unverified or partially computed score.
  EXPECT_TRUE(stats.truncated);
  TopKList full = RunTopKJoin(view, TopKJoinOptions{
                                        .k = options.k,
                                        .measure = options.measure,
                                        .q = options.q,
                                    });
  EXPECT_LT(stats.events_popped, 150u * 7u);  // Stopped before draining.
  DirectPairScorer scorer(&view, options.measure);
  for (const ScoredPair& entry : got.Entries()) {
    EXPECT_EQ(entry.score, scorer.Score(PairRowA(entry.pair),
                                        PairRowB(entry.pair)));
    EXPECT_GE(OverlapOf(view, PairRowA(entry.pair), PairRowB(entry.pair)),
              options.q);
  }
  EXPECT_LE(got.size(), full.size());
}

}  // namespace
}  // namespace mc
