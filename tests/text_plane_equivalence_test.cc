// The PR-level acceptance test for the tokenize-once text plane: every
// output of the debugging pipeline — promising-attribute e-scores, per-config
// top-k lists (pairs AND score bits), the candidate set E, pair feature
// vectors, blocker candidate sets, and repair suggestions — must be
// bit-identical between TextPlane::kLegacy (per-call string tokenization)
// and TextPlane::kTokenized (span reads), at 1 and N threads.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "explain/repair.h"
#include "table/tokenized_table.h"

namespace mc {
namespace {

datagen::GeneratedDataset TestDataset() {
  return datagen::GenerateFodorsZagats(
      datagen::ScaleDims(datagen::kDimsFodorsZagats, 0.3));
}

Result<DebugSession> MakeSession(const datagen::GeneratedDataset& dataset,
                                 const CandidateSet& blocker_output,
                                 TextPlane text_plane, size_t threads) {
  MatchCatcherOptions options;
  options.joint.k = 50;
  options.joint.num_threads = threads;
  options.text_plane = text_plane;
  return DebugSession::Create(dataset.table_a, dataset.table_b,
                              blocker_output, options);
}

// Exact double equality, expressed over the bit patterns so the failure
// message shows which bits moved (== on doubles would also be exact, but
// hides denormal/negative-zero differences).
::testing::AssertionResult SameBits(double x, double y) {
  uint64_t bx, by;
  std::memcpy(&bx, &x, sizeof(bx));
  std::memcpy(&by, &y, sizeof(by));
  if (bx == by) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << x << " vs " << y << " (bits " << bx << " vs " << by << ")";
}

TEST(TextPlaneEquivalenceTest, FullSessionBitIdentical) {
  datagen::GeneratedDataset dataset = TestDataset();
  size_t city = dataset.table_a.schema().RequireIndexOf("city");
  auto blocker = HashBlocker::AttributeEquivalence(city);
  CandidateSet blocked = blocker->Run(dataset.table_a, dataset.table_b);

  Result<DebugSession> legacy =
      MakeSession(dataset, blocked, TextPlane::kLegacy, 1);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->text_plane_seconds(), 0.0);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    Result<DebugSession> tokenized =
        MakeSession(dataset, blocked, TextPlane::kTokenized, threads);
    ASSERT_TRUE(tokenized.ok());
    EXPECT_GT(tokenized->text_plane_seconds(), 0.0);
    EXPECT_NE(SharedTextPlane(tokenized->table_a(), tokenized->table_b()),
              nullptr);
    EXPECT_EQ(SharedTextPlane(legacy->table_a(), legacy->table_b()), nullptr);

    // Promising attributes: same columns, bit-identical e-scores and
    // average lengths (profiling ran on spans vs strings).
    const PromisingAttributes& pa = tokenized->attributes();
    const PromisingAttributes& pl = legacy->attributes();
    ASSERT_EQ(pa.columns, pl.columns) << threads << " threads";
    ASSERT_EQ(pa.e_scores.size(), pl.e_scores.size());
    for (size_t i = 0; i < pa.e_scores.size(); ++i) {
      EXPECT_TRUE(SameBits(pa.e_scores[i], pl.e_scores[i])) << "e_score " << i;
      EXPECT_TRUE(SameBits(pa.avg_len_a[i], pl.avg_len_a[i]));
      EXPECT_TRUE(SameBits(pa.avg_len_b[i], pl.avg_len_b[i]));
    }

    // Inferred schema types must agree (type inference profiles via the
    // plane under kTokenized).
    ASSERT_TRUE(tokenized->table_a().schema() == legacy->table_a().schema());

    // Per-config top-k lists: identical pairs and score bits, in order.
    auto lists_t = tokenized->TopKLists();
    auto lists_l = legacy->TopKLists();
    ASSERT_EQ(lists_t.size(), lists_l.size());
    for (size_t c = 0; c < lists_t.size(); ++c) {
      ASSERT_EQ(lists_t[c].size(), lists_l[c].size()) << "config " << c;
      for (size_t i = 0; i < lists_t[c].size(); ++i) {
        EXPECT_EQ(lists_t[c][i].pair, lists_l[c][i].pair)
            << "config " << c << " entry " << i;
        EXPECT_TRUE(SameBits(lists_t[c][i].score, lists_l[c][i].score))
            << "config " << c << " entry " << i;
      }
    }

    // E and per-pair feature vectors.
    std::vector<PairId> pairs_t = tokenized->CandidatePairs();
    std::vector<PairId> pairs_l = legacy->CandidatePairs();
    ASSERT_EQ(pairs_t, pairs_l);
    for (PairId pair : pairs_t) {
      FeatureVector ft = tokenized->extractor().Extract(pair);
      FeatureVector fl = legacy->extractor().Extract(pair);
      ASSERT_EQ(ft.size(), fl.size());
      for (size_t i = 0; i < ft.size(); ++i) {
        EXPECT_TRUE(SameBits(ft[i], fl[i]))
            << "pair " << pair << " feature " << i << " ("
            << tokenized->extractor().feature_names()[i] << ")";
      }
    }

    // Repair suggestions render identically (BestComplementaryAttribute
    // averages span Jaccards vs string Jaccards).
    std::vector<PairId> confirmed(pairs_t.begin(),
                                  pairs_t.begin() +
                                      std::min<size_t>(pairs_t.size(), 20));
    std::string repairs_t = RenderRepairs(
        tokenized->table_a().schema(),
        SuggestRepairs(tokenized->table_a(), tokenized->table_b(),
                       confirmed));
    std::string repairs_l = RenderRepairs(
        legacy->table_a().schema(),
        SuggestRepairs(legacy->table_a(), legacy->table_b(), confirmed));
    EXPECT_EQ(repairs_t, repairs_l);
  }
}

TEST(TextPlaneEquivalenceTest, BlockerCandidateSetsIdentical) {
  datagen::GeneratedDataset dataset = TestDataset();
  Table plain_a = dataset.table_a;
  Table plain_b = dataset.table_b;
  Table span_a = dataset.table_a;
  Table span_b = dataset.table_b;
  TokenizedTable::BuildAndAttach(span_a, span_b);
  ASSERT_NE(SharedTextPlane(span_a, span_b), nullptr);

  size_t name = dataset.table_a.schema().RequireIndexOf("name");
  size_t city = dataset.table_a.schema().RequireIndexOf("city");
  std::vector<std::shared_ptr<const Blocker>> blockers = {
      HashBlocker::AttributeEquivalence(city),
      std::make_shared<HashBlocker>(
          KeyFunction(KeyFunction::Kind::kLastWord, name)),
      std::make_shared<HashBlocker>(
          KeyFunction(KeyFunction::Kind::kPrefix, name, 4)),
      std::make_shared<SimilarityBlocker>(name, TokenizerSpec::Word(),
                                          SetMeasure::kJaccard, 0.4),
      std::make_shared<SimilarityBlocker>(name, TokenizerSpec::QGram(3),
                                          SetMeasure::kCosine, 0.5),
      std::make_shared<OverlapBlocker>(name, TokenizerSpec::Word(), 2),
      std::make_shared<SortedNeighborhoodBlocker>(
          KeyFunction(KeyFunction::Kind::kFullValue, name), 4),
  };
  for (const auto& blocker : blockers) {
    CandidateSet plain = blocker->Run(plain_a, plain_b);
    CandidateSet spans = blocker->Run(span_a, span_b);
    EXPECT_EQ(plain.SortedPairs(), spans.SortedPairs())
        << blocker->Description(dataset.table_a.schema());
  }

  // KeepsPair (the predicate path) agrees on a dense probe of pairs.
  for (const auto& blocker : blockers) {
    for (size_t r = 0; r < std::min<size_t>(plain_a.num_rows(), 25); ++r) {
      for (size_t s = 0; s < std::min<size_t>(plain_b.num_rows(), 25); ++s) {
        std::optional<bool> plain = blocker->KeepsPair(plain_a, r, plain_b, s);
        std::optional<bool> spans = blocker->KeepsPair(span_a, r, span_b, s);
        EXPECT_EQ(plain, spans)
            << blocker->Description(dataset.table_a.schema()) << " pair ("
            << r << "," << s << ")";
      }
    }
  }
}

}  // namespace
}  // namespace mc
