// Golden-vector and determinism tests for the tokenize-once text plane
// (table/tokenized_table.h): per-cell token streams and sorted ranks must
// reproduce the legacy WordTokens/DistinctWordTokens string tokenizer
// byte-for-byte, across edge-case inputs, thread counts, and fault
// injection.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "table/table.h"
#include "table/tokenized_table.h"
#include "text/normalize.h"
#include "text/tokenize.h"
#include "util/fault_injection.h"

namespace mc {
namespace {

Table OneColumnTable(const std::vector<std::string>& values) {
  Table table(Schema({{"text", AttributeType::kString}}));
  for (const std::string& value : values) table.AddRow({value});
  return table;
}

// Reconstructs the cell's WordTokens sequence (with duplicates) from the
// plane's stream encoding.
std::vector<std::string> StreamTokens(const TokenizedTable& plane,
                                      size_t side, size_t row,
                                      size_t column) {
  std::vector<std::string> tokens;
  for (uint32_t entry : plane.TokenStream(side, row, column)) {
    tokens.push_back(plane.word_dictionary().TokenOf(entry & kTextTokenIdMask));
  }
  return tokens;
}

// Reconstructs the cell's DistinctWordTokens sequence (first-appearance
// order) by masking within-cell repeats out of the stream.
std::vector<std::string> DistinctStreamTokens(const TokenizedTable& plane,
                                              size_t side, size_t row,
                                              size_t column) {
  std::vector<std::string> tokens;
  for (uint32_t entry : plane.TokenStream(side, row, column)) {
    if (entry & kTextRepeatBit) continue;
    tokens.push_back(plane.word_dictionary().TokenOf(entry));
  }
  return tokens;
}

// The golden edge-case vocabulary: UTF-8/non-ASCII bytes, digit runs,
// empty and whitespace-only cells, punctuation-only cells, within-cell
// repeats, and mixed-case values.
std::vector<std::string> GoldenValues() {
  return {
      "Caf\xc3\xa9 M\xc3\xbcnchen",  // Non-ASCII bytes -> token splitters.
      "abc123 456def 7 89",          // Digit runs stay inside tokens.
      "",                            // Empty cell.
      "   \t  ",                     // Whitespace-only (missing).
      "!!! ... ---",                 // Punctuation-only: zero tokens.
      "the the cat THE the",         // Repeats, case-insensitive.
      "  Leading and trailing  ",
      "MiXeD CaSe ToKeNs",
      "a",           // Single short token.
      "x y x y x",   // Alternating repeats.
  };
}

TEST(TokenizedTableTest, GoldenStreamsMatchLegacyTokenizer) {
  Table table = OneColumnTable(GoldenValues());
  auto plane = TokenizedTable::Build(table, table);
  ASSERT_NE(plane, nullptr);
  ASSERT_FALSE(plane->truncated());
  for (size_t side = 0; side < 2; ++side) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::string_view raw = table.Value(r, 0);
      EXPECT_EQ(StreamTokens(*plane, side, r, 0), WordTokens(raw))
          << "row " << r << " value '" << raw << "'";
      EXPECT_EQ(DistinctStreamTokens(*plane, side, r, 0),
                DistinctWordTokens(raw))
          << "row " << r << " value '" << raw << "'";
      EXPECT_EQ(plane->TokenCount(side, r, 0), WordTokens(raw).size());
      EXPECT_EQ(plane->DistinctTokenCount(side, r, 0),
                DistinctWordTokens(raw).size());
      EXPECT_EQ(plane->NormalizedValue(side, r, 0), NormalizeForTokens(raw));
      EXPECT_EQ(plane->missing(side, r, 0), table.IsMissing(r, 0));
    }
  }
}

TEST(TokenizedTableTest, FirstAndLastTokens) {
  Table table = OneColumnTable(GoldenValues());
  auto plane = TokenizedTable::Build(table, table);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string_view raw = table.Value(r, 0);
    EXPECT_EQ(plane->FirstTokenOf(0, r, 0), FirstWordToken(raw));
    EXPECT_EQ(plane->LastTokenOf(0, r, 0), LastWordToken(raw));
  }
}

TEST(TokenizedTableTest, SortedRanksAreSortedDistinctGlobalRanks) {
  Table table = OneColumnTable(GoldenValues());
  auto plane = TokenizedTable::Build(table, table);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    CellSpan ranks = plane->SortedRanks(0, r, 0);
    std::vector<uint32_t> expected;
    for (const std::string& token : DistinctWordTokens(table.Value(r, 0))) {
      // Every token must be interned; RankOf over its id gives the rank.
      bool found = false;
      for (size_t id = 0; id < plane->word_dictionary().size(); ++id) {
        if (plane->word_dictionary().TokenOf(static_cast<TokenId>(id)) ==
            token) {
          expected.push_back(
              plane->word_dictionary().RankOf(static_cast<TokenId>(id)));
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "token '" << token << "' not interned";
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(std::vector<uint32_t>(ranks.begin(), ranks.end()), expected);
  }
}

TEST(TokenizedTableTest, QGramPlanesMatchLegacyQGrams) {
  Table table = OneColumnTable(
      {"ab", "a b c", "abcd", "", "  ", "Caf\xc3\xa9", "aaaa", "x"});
  auto plane = TokenizedTable::Build(table, table);
  for (size_t q = 2; q <= 4; ++q) {
    const TokenizedTable::QGramColumn* grams = plane->QGramsForColumn(q, 0);
    ASSERT_NE(grams, nullptr) << "q=" << q;
    for (size_t ra = 0; ra < table.num_rows(); ++ra) {
      // Padded gram counts: QGrams pads with q-1 '#' on both ends and
      // returns distinct grams; the plane must agree on sizes and on every
      // pairwise overlap (gram ids are plane-local, only counts compare).
      std::vector<std::string> legacy_a = QGrams(table.Value(ra, 0), q);
      EXPECT_EQ(grams->Row(0, ra).size(), legacy_a.size())
          << "q=" << q << " row " << ra;
      for (size_t rb = 0; rb < table.num_rows(); ++rb) {
        std::vector<std::string> legacy_b = QGrams(table.Value(rb, 0), q);
        size_t legacy_overlap = 0;
        for (const std::string& gram : legacy_a) {
          for (const std::string& other : legacy_b) {
            if (gram == other) {
              ++legacy_overlap;
              break;
            }
          }
        }
        EXPECT_EQ(SortedSpanOverlap(grams->Row(0, ra), grams->Row(1, rb)),
                  legacy_overlap)
            << "q=" << q << " rows " << ra << "," << rb;
      }
    }
  }
  EXPECT_EQ(plane->QGramsForColumn(0, 0), nullptr);
  EXPECT_EQ(plane->QGramsForColumn(3, 99), nullptr);
}

TEST(TokenizedTableTest, AttachmentGuards) {
  Table a = OneColumnTable({"one two", "three"});
  Table b = OneColumnTable({"four", "five six"});
  EXPECT_EQ(AttachedTextPlane(a), nullptr);
  EXPECT_EQ(SharedTextPlane(a, b), nullptr);

  auto plane = TokenizedTable::BuildAndAttach(a, b);
  EXPECT_EQ(AttachedTextPlane(a), plane.get());
  EXPECT_EQ(AttachedTextPlane(b), plane.get());
  EXPECT_EQ(SharedTextPlane(a, b), plane.get());
  EXPECT_EQ(a.text_plane_side(), 0u);
  EXPECT_EQ(b.text_plane_side(), 1u);

  // Mutating a table detaches its plane: stale spans must never be served.
  a.AddRow({"seven"});
  EXPECT_EQ(AttachedTextPlane(a), nullptr);
  EXPECT_EQ(SharedTextPlane(a, b), nullptr);
  EXPECT_EQ(AttachedTextPlane(b), plane.get());
}

TEST(TokenizedTableTest, MissingBitmapMatchesTrimEmptiness) {
  Table table(Schema({{"x", AttributeType::kString},
                      {"y", AttributeType::kString}}));
  table.AddRow({"value", ""});
  table.AddRow({"  ", "\t\n"});
  table.AddRow({" v ", "w"});
  EXPECT_FALSE(table.IsMissing(0, 0));
  EXPECT_TRUE(table.IsMissing(0, 1));
  EXPECT_TRUE(table.IsMissing(1, 0));
  EXPECT_TRUE(table.IsMissing(1, 1));
  EXPECT_FALSE(table.IsMissing(2, 0));
  EXPECT_FALSE(table.IsMissing(2, 1));
}

class TokenizedTableDeterminismTest : public ::testing::Test {};

TEST_F(TokenizedTableDeterminismTest, BitIdenticalAcrossThreadCounts) {
  std::vector<std::string> values;
  for (size_t i = 0; i < 100; ++i) {
    values.push_back("tok" + std::to_string(i % 13) + " shared tok" +
                     std::to_string(i % 7) + (i % 5 == 0 ? "" : " extra"));
  }
  Table a = OneColumnTable(values);
  std::reverse(values.begin(), values.end());
  Table b = OneColumnTable(values);

  TextPlaneBuildOptions base;
  base.block_rows = 8;  // Many blocks even at these sizes.
  base.num_threads = 1;
  auto reference = TokenizedTable::Build(a, b, base);
  for (size_t threads : {2, 4, 8}) {
    TextPlaneBuildOptions options = base;
    options.num_threads = threads;
    auto plane = TokenizedTable::Build(a, b, options);
    ASSERT_FALSE(plane->truncated());
    EXPECT_EQ(plane->word_dictionary().size(),
              reference->word_dictionary().size());
    for (size_t side = 0; side < 2; ++side) {
      for (size_t r = 0; r < plane->num_rows(side); ++r) {
        CellSpan s = plane->TokenStream(side, r, 0);
        CellSpan ref = reference->TokenStream(side, r, 0);
        ASSERT_EQ(s.size(), ref.size()) << threads << " threads, row " << r;
        EXPECT_TRUE(std::equal(s.begin(), s.end(), ref.begin()))
            << threads << " threads, row " << r;
        CellSpan sr = plane->SortedRanks(side, r, 0);
        CellSpan refr = reference->SortedRanks(side, r, 0);
        ASSERT_EQ(sr.size(), refr.size());
        EXPECT_TRUE(std::equal(sr.begin(), sr.end(), refr.begin()));
        EXPECT_EQ(plane->NormId(side, r, 0), reference->NormId(side, r, 0));
      }
    }
  }
}

TEST_F(TokenizedTableDeterminismTest, InjectedFaultTruncatesAndNeverAttaches) {
  Table a = OneColumnTable({"one two", "three four", "five", "six seven"});
  Table b = OneColumnTable({"eight", "nine ten"});
  FaultRegistry::Instance().ArmNthHit("text_plane/build_block",
                                      FaultKind::kError, 1);
  TextPlaneBuildOptions options;
  options.block_rows = 2;
  options.num_threads = 1;
  TextPlaneBuildStats stats;
  auto plane = TokenizedTable::BuildAndAttach(a, b, options, &stats);
  FaultRegistry::Instance().Reset();
  EXPECT_TRUE(plane->truncated());
  EXPECT_EQ(stats.dropped_blocks, 1u);
  EXPECT_EQ(AttachedTextPlane(a), nullptr);
  EXPECT_EQ(SharedTextPlane(a, b), nullptr);
  EXPECT_EQ(plane->QGramsForColumn(3, 0), nullptr);
}

TEST_F(TokenizedTableDeterminismTest, ThrowingFaultIsAbsorbed) {
  Table a = OneColumnTable({"one two", "three four", "five", "six seven"});
  Table b = OneColumnTable({"eight", "nine ten"});
  for (size_t threads : {size_t{1}, size_t{4}}) {
    FaultRegistry::Instance().ArmNthHit("text_plane/build_block",
                                        FaultKind::kThrow, 2);
    TextPlaneBuildOptions options;
    options.block_rows = 2;
    options.num_threads = threads;
    auto plane = TokenizedTable::Build(a, b, options);
    FaultRegistry::Instance().Reset();
    EXPECT_TRUE(plane->truncated());
    EXPECT_GE(plane->build_stats().dropped_blocks, 1u);
  }
}

TEST_F(TokenizedTableDeterminismTest, CancellationTruncates) {
  Table a = OneColumnTable({"one", "two", "three", "four"});
  Table b = OneColumnTable({"five", "six"});
  TextPlaneBuildOptions options;
  options.block_rows = 1;
  options.num_threads = 1;
  options.run_context = RunContext::Cancellable();
  options.run_context.Cancel();
  auto plane = TokenizedTable::Build(a, b, options);
  EXPECT_TRUE(plane->truncated());
  EXPECT_EQ(plane->build_stats().dropped_blocks,
            plane->build_stats().blocks);
  // Dropped cells read as empty, not garbage.
  EXPECT_EQ(plane->TokenCount(0, 0, 0), 0u);
  EXPECT_EQ(plane->NormalizedValue(0, 0, 0), "");
}

}  // namespace
}  // namespace mc
