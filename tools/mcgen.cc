// mcgen — generate a paper-style benchmark dataset as CSV files.
//
//   mcgen <dataset> <output-dir> [--scale S] [--seed N] [--blocker LABEL]
//
// <dataset> is one of A-G, W-A, A-D, F-Z, M1, M2, Papers (paper Table 1).
// Writes A.csv, B.csv, gold.csv (gold matches as "a,b" row indexes), and —
// when --blocker names one of the dataset's Table 2 blockers implemented in
// the library examples — C.csv (the blocker output), ready for mcdbg:
//
//   mcgen F-Z /tmp/fz --blocker HASH
//   mcdbg /tmp/fz/A.csv /tmp/fz/B.csv /tmp/fz/C.csv --gold /tmp/fz/gold.csv

#include <fstream>
#include <iostream>
#include <string>

#include "blocking/standard_blockers.h"
#include "datagen/generator.h"
#include "table/csv.h"

namespace {

mc::Status WritePairs(const mc::CandidateSet& pairs,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return mc::Status::IoError("cannot open " + path);
  out << "a,b\n";
  for (mc::PairId pair : pairs.SortedPairs()) {
    out << mc::PairRowA(pair) << "," << mc::PairRowB(pair) << "\n";
  }
  if (!out) return mc::Status::IoError("write failed for " + path);
  return mc::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset_name, output_dir, blocker_attr;
  double scale = 1.0;
  uint64_t seed = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return 2;
      scale = std::stod(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return 2;
      seed = std::stoull(v);
    } else if (arg == "--blocker") {
      const char* v = next();
      if (v == nullptr) return 2;
      blocker_attr = v;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "usage: " << argv[0]
              << " <A-G|W-A|A-D|F-Z|M1|M2|Papers> <output-dir> [--scale S]"
                 " [--seed N] [--blocker ATTRIBUTE]\n"
                 "--blocker builds C.csv with attribute-equivalence "
                 "blocking on the named attribute.\n";
    return 2;
  }
  dataset_name = positional[0];
  output_dir = positional[1];

  mc::Result<mc::datagen::GeneratedDataset> dataset =
      mc::datagen::GenerateByName(dataset_name, scale, seed);
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  mc::Status status =
      mc::WriteCsvFile(dataset->table_a, output_dir + "/A.csv");
  if (status.ok()) {
    status = mc::WriteCsvFile(dataset->table_b, output_dir + "/B.csv");
  }
  if (status.ok()) {
    status = WritePairs(dataset->gold, output_dir + "/gold.csv");
  }
  if (status.ok() && !blocker_attr.empty()) {
    std::optional<size_t> column =
        dataset->table_a.schema().IndexOf(blocker_attr);
    if (!column.has_value()) {
      std::cerr << "no attribute named " << blocker_attr << "\n";
      return 1;
    }
    auto blocker = mc::HashBlocker::AttributeEquivalence(*column);
    mc::CandidateSet c = blocker->Run(dataset->table_a, dataset->table_b);
    status = WritePairs(c, output_dir + "/C.csv");
    if (status.ok()) {
      std::cout << "blocker " << blocker->Description(
                       dataset->table_a.schema())
                << ": |C| = " << c.size() << "\n";
    }
  }
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << dataset->name << ": wrote A.csv (" <<
      dataset->table_a.num_rows() << " rows), B.csv ("
            << dataset->table_b.num_rows() << " rows), gold.csv ("
            << dataset->gold.size() << " matches) to " << output_dir
            << "\n";
  return 0;
}
