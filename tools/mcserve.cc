// mcserve — drives the session service from the command line.
//
// Stands up a SessionManager on a generated workload (or two CSV tables),
// pushes a burst of debugging sessions through it, and prints one line per
// session plus the service counters. The operational smoke test for the
// service layer: admission control, plane sharing, deadlines, checkpointing
// and chaos (seeded fault injection) are all reachable from flags.
//
//   mcserve [options]
//   mcserve --tables A.csv,B.csv --candidates C.csv [options]
//
// Options:
//   --dataset NAME     generated workload: amazon_google (default),
//                      fodors_zagats, walmart_amazon, acm_dblp
//   --scale F          dataset scale factor (default 0.05)
//   --sessions N       sessions to submit (default 8)
//   --concurrency N    max concurrent sessions (default 4)
//   --queue N          admission queue depth beyond concurrency (default 16)
//   --k N              top-k per config (default 100)
//   --threads N        per-session joint workers (default 2)
//   --deadline-ms N    per-session deadline (default: none)
//   --memory-limit B   shared build budget in bytes (default: unlimited)
//   --checkpoint DIR   save finished sessions; restore from DIR on start
//   --chaos-seed S     arm probabilistic faults at the service fault points
//   --retry-after      honor kResourceExhausted retry-after hints and
//                      resubmit instead of dropping
//   --deltas N         the apply-delta command: after the session burst,
//                      push N synthetic row deltas (mutate + append + delete)
//                      through ApplyTableDelta and report the patch counters
//   --delta-seed S     seed for the synthetic delta generator (default 7)
//   --q N              joint q parameter; 0 runs the cost-based planner
//                      (default 1: fixed q, planner off)
//   --explain-plans    print each session's cost-based plan (with its
//                      execution mode and whether it was served from the
//                      cross-session plan cache), the per-config plan
//                      decisions (q, shards, hybrid prefilter, exec mode,
//                      parent seeding), the service plan-cache hit/miss
//                      counters, and the live calibrated cost-weight
//                      vector; implies --q 0 unless --q was given
//                      explicitly
//   --no-plan-cache    disable the cross-session plan cache (every
//                      planner-eligible session re-runs the sampling
//                      probes; the ablation baseline for the cache)
//   --topology         print the detected (or MC_TOPOLOGY-forced) NUMA
//                      topology at startup, and per-node arena bytes plus
//                      the placement-fallback counter after the run
//
// Exit status: 0 when every admitted session ends complete or truncated,
// 1 when any session fails, 2 on usage errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "blocking/candidate_set.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "mem/arena_stats.h"
#include "mem/node_local_arena.h"
#include "mem/topology.h"
#include "service/session_manager.h"
#include "ssj/cost_calibrator.h"
#include "table/csv.h"
#include "util/fault_injection.h"

namespace {

struct Args {
  std::string dataset = "amazon_google";
  std::string table_a, table_b, candidates;
  double scale = 0.05;
  size_t sessions = 8;
  size_t concurrency = 4;
  size_t queue = 16;
  size_t k = 100;
  size_t threads = 2;
  int64_t deadline_ms = -1;
  size_t memory_limit = 0;
  std::string checkpoint_dir;
  uint64_t chaos_seed = 0;
  bool chaos = false;
  bool honor_retry_after = false;
  size_t deltas = 0;
  uint64_t delta_seed = 7;
  size_t joint_q = 1;
  bool q_set = false;
  bool explain_plans = false;
  bool plan_cache = true;
  bool topology = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dataset NAME] [--scale F] [--sessions N] "
               "[--concurrency N] [--queue N] [--k N] [--threads N] "
               "[--deadline-ms N] [--memory-limit B] [--checkpoint DIR] "
               "[--chaos-seed S] [--retry-after] [--deltas N] "
               "[--delta-seed S] [--q N] [--explain-plans] "
               "[--no-plan-cache] [--topology]\n"
               "       %s --tables A.csv,B.csv --candidates C.csv [...]\n",
               argv0, argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--dataset" && (value = next())) {
      args->dataset = value;
    } else if (arg == "--tables" && (value = next())) {
      const std::string pair = value;
      const size_t comma = pair.find(',');
      if (comma == std::string::npos) return false;
      args->table_a = pair.substr(0, comma);
      args->table_b = pair.substr(comma + 1);
    } else if (arg == "--candidates" && (value = next())) {
      args->candidates = value;
    } else if (arg == "--scale" && (value = next())) {
      args->scale = std::atof(value);
    } else if (arg == "--sessions" && (value = next())) {
      args->sessions = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--concurrency" && (value = next())) {
      args->concurrency = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--queue" && (value = next())) {
      args->queue = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--k" && (value = next())) {
      args->k = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--threads" && (value = next())) {
      args->threads = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--deadline-ms" && (value = next())) {
      args->deadline_ms = std::atoll(value);
    } else if (arg == "--memory-limit" && (value = next())) {
      args->memory_limit = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--checkpoint" && (value = next())) {
      args->checkpoint_dir = value;
    } else if (arg == "--chaos-seed" && (value = next())) {
      args->chaos = true;
      args->chaos_seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--retry-after") {
      args->honor_retry_after = true;
    } else if (arg == "--deltas" && (value = next())) {
      args->deltas = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--delta-seed" && (value = next())) {
      args->delta_seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--q" && (value = next())) {
      args->joint_q = static_cast<size_t>(std::atoll(value));
      args->q_set = true;
    } else if (arg == "--explain-plans") {
      args->explain_plans = true;
    } else if (arg == "--no-plan-cache") {
      args->plan_cache = false;
    } else if (arg == "--topology") {
      args->topology = true;
    } else {
      return false;
    }
  }
  // Plan decisions only exist when the planner runs.
  if (args->explain_plans && !args->q_set) args->joint_q = 0;
  return args->concurrency >= 1 && args->sessions >= 1;
}

// One-line rendering of a session's cost-based plan plus one line per
// config decision, for --explain-plans.
void PrintPlan(uint64_t id, const mc::SessionOutcome& outcome) {
  if (!outcome.planner_used) {
    std::printf("  plan: none (planner off or session did not run a join)\n");
    return;
  }
  const mc::JoinPlan& plan = outcome.plan;
  std::printf(
      "  plan[%llu]: q=%zu shards=%zu mode=%s hybrid=%d tau=%.6f "
      "sample=%zu rows (rate 1/%zu) kth=%.6f half_kth=%.6f stats_gen=%llu "
      "seed=%llu%s%s\n",
      static_cast<unsigned long long>(id), plan.q, plan.shards,
      mc::JoinExecModeName(plan.mode), plan.hybrid ? 1 : 0,
      plan.prefilter_threshold, plan.sample_rows, plan.sample_rate,
      plan.sampled_kth, plan.half_sample_kth,
      static_cast<unsigned long long>(plan.stats_generation),
      static_cast<unsigned long long>(plan.seed),
      outcome.plan_cache_hit ? " (plan cache hit)" : "",
      plan.truncated ? " (truncated: conservative fallback)" : "");
  for (size_t q = 0; q < plan.cost_per_q.size(); ++q) {
    std::printf("    cost[q=%zu]=%.0f%s\n", q + 1, plan.cost_per_q[q],
                q + 1 == plan.q ? "  <- chosen" : "");
  }
  for (const mc::ConfigPlanDecision& decision : outcome.plan_decisions) {
    std::printf(
        "    config=0x%llx q=%zu shards=%zu mode=%s hybrid=%d tau=%.6f "
        "seeded=%d\n",
        static_cast<unsigned long long>(decision.config), decision.q,
        decision.shards, mc::JoinExecModeName(decision.mode),
        decision.hybrid ? 1 : 0, decision.prefilter_threshold,
        decision.seeded_from_parent ? 1 : 0);
  }
}

// Loads an "a,b" row-index pair CSV into a CandidateSet (same format as
// mcdbg's C.csv input).
mc::Result<mc::CandidateSet> LoadPairs(const std::string& path,
                                       size_t rows_a, size_t rows_b) {
  mc::Result<mc::Table> table = mc::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  if (table->num_columns() < 2) {
    return mc::Status::InvalidArgument(path +
                                       ": expected two columns (a,b)");
  }
  mc::CandidateSet pairs;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::optional<double> a = table->NumericValue(r, 0);
    std::optional<double> b = table->NumericValue(r, 1);
    if (!a.has_value() || !b.has_value() || *a < 0 || *b < 0 ||
        *a >= static_cast<double>(rows_a) ||
        *b >= static_cast<double>(rows_b)) {
      return mc::Status::InvalidArgument(
          path + ": bad pair at data row " + std::to_string(r));
    }
    pairs.Add(static_cast<mc::RowId>(*a), static_cast<mc::RowId>(*b));
  }
  return pairs;
}

// One synthetic delta against the registered pair: mutate a couple of rows
// (a "rev<g>" marker keeps each generation's content distinct), append one
// row cloned from an existing one, and tombstone a row every third delta.
// Deterministic for a given (seed, generation, table shape).
mc::TableDelta SynthesizeDelta(const mc::Table& table_a,
                               const mc::Table& table_b, size_t generation,
                               std::mt19937_64& rng) {
  mc::TableDelta delta;
  delta.side = static_cast<uint8_t>(generation % 2);
  const mc::Table& table = delta.side == 0 ? table_a : table_b;
  if (table.num_rows() == 0) return delta;
  auto row_values = [&](size_t row) {
    std::vector<std::string> values;
    values.reserve(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      values.emplace_back(table.Value(row, c));
    }
    return values;
  };
  const std::string marker = " rev" + std::to_string(generation);
  for (size_t m = 0; m < 2; ++m) {
    mc::TableDelta::RowEdit edit;
    edit.row = static_cast<uint32_t>(rng() % table.num_rows());
    edit.values = row_values(edit.row);
    edit.values[0] += marker;
    // ApplyTableDelta rejects duplicate row edits; skip collisions.
    bool duplicate = false;
    for (const auto& prior : delta.mutated) {
      duplicate = duplicate || prior.row == edit.row;
    }
    if (!duplicate) delta.mutated.push_back(std::move(edit));
  }
  std::vector<std::string> appended = row_values(rng() % table.num_rows());
  appended[0] += marker + " appended";
  delta.appended.push_back(std::move(appended));
  if (generation % 3 == 2) {
    const uint32_t victim = static_cast<uint32_t>(rng() % table.num_rows());
    bool duplicate = false;
    for (const auto& prior : delta.mutated) {
      duplicate = duplicate || prior.row == victim;
    }
    if (!duplicate) delta.deleted.push_back(victim);
  }
  return delta;
}

mc::datagen::GeneratedDataset Generate(const Args& args) {
  using namespace mc::datagen;
  if (args.dataset == "fodors_zagats") {
    return GenerateFodorsZagats(ScaleDims(kDimsFodorsZagats, args.scale));
  }
  if (args.dataset == "walmart_amazon") {
    return GenerateWalmartAmazon(ScaleDims(kDimsWalmartAmazon, args.scale));
  }
  if (args.dataset == "acm_dblp") {
    return GenerateAcmDblp(ScaleDims(kDimsAcmDblp, args.scale));
  }
  return GenerateAmazonGoogle(ScaleDims(kDimsAmazonGoogle, args.scale));
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  if (args.topology) {
    const mc::mem::SystemTopology& topo = mc::mem::SystemTopology::Get();
    std::printf("topology: %s binding=%s\n", topo.ToString().c_str(),
                mc::mem::MemoryBindingAvailable() ? "available"
                                                  : "unavailable");
  }

  mc::Table table_a, table_b;
  mc::CandidateSet candidates;
  std::string pair_key;
  if (!args.table_a.empty()) {
    if (args.candidates.empty()) return Usage(argv[0]);
    mc::Result<mc::Table> a = mc::ReadCsvFile(args.table_a);
    mc::Result<mc::Table> b = mc::ReadCsvFile(args.table_b);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "cannot load tables: %s\n",
                   (!a.ok() ? a.status() : b.status()).ToString().c_str());
      return 1;
    }
    mc::Result<mc::CandidateSet> c =
        LoadPairs(args.candidates, a->num_rows(), b->num_rows());
    if (!c.ok()) {
      std::fprintf(stderr, "cannot load candidates: %s\n",
                   c.status().ToString().c_str());
      return 1;
    }
    table_a = *std::move(a);
    table_b = *std::move(b);
    candidates = *std::move(c);
    pair_key = args.table_a + "," + args.table_b;
  } else {
    mc::datagen::GeneratedDataset dataset = Generate(args);
    table_a = std::move(dataset.table_a);
    table_b = std::move(dataset.table_b);
    candidates = std::move(dataset.gold);
    pair_key = dataset.name;
  }

  mc::ServiceLimits limits;
  limits.max_concurrent_sessions = args.concurrency;
  limits.max_queued_sessions = args.queue;
  limits.memory_limit_bytes = args.memory_limit;
  limits.default_deadline_millis = args.deadline_ms;
  limits.checkpoint_dir = args.checkpoint_dir;
  limits.enable_plan_cache = args.plan_cache;
  mc::SessionManager manager(limits);

  if (!args.checkpoint_dir.empty()) {
    mc::Result<size_t> restored = manager.RestoreFromCheckpoints();
    if (restored.ok() && *restored > 0) {
      std::printf("restored %zu finished session(s) from %s\n", *restored,
                  args.checkpoint_dir.c_str());
    }
  }

  if (args.chaos) {
    // Real faults at the real sites; kept armed for the whole run so
    // operators can watch the service degrade and recover live.
    auto& registry = mc::FaultRegistry::Instance();
    registry.ArmWithProbability("service/build", mc::FaultKind::kError, 0.2,
                                args.chaos_seed ^ 0x1);
    registry.ArmWithProbability("corpus/build_block", mc::FaultKind::kError,
                                0.02, args.chaos_seed ^ 0x2);
    registry.ArmWithProbability("session_io/write", mc::FaultKind::kError,
                                0.2, args.chaos_seed ^ 0x3);
    std::printf("chaos armed (seed %llu)\n",
                static_cast<unsigned long long>(args.chaos_seed));
  }

  mc::Status registered =
      manager.RegisterTablePair(pair_key, table_a, table_b, candidates);
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    return 1;
  }

  mc::SessionRequest request;
  request.pair_key = pair_key;
  request.options.joint.k = args.k;
  request.options.joint.num_threads = args.threads;
  request.options.joint.q = args.joint_q;

  std::vector<uint64_t> ids;
  size_t rejected = 0;
  for (size_t s = 0; s < args.sessions; ++s) {
    mc::Result<uint64_t> id = manager.Submit(request);
    if (!id.ok() && args.honor_retry_after &&
        id.status().code() == mc::StatusCode::kResourceExhausted) {
      const int64_t wait_ms = id.status().retry_after_millis();
      std::printf("queue full; retrying in %lld ms\n",
                  static_cast<long long>(wait_ms));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(wait_ms > 0 ? wait_ms : 1));
      id = manager.Submit(request);
    }
    if (!id.ok()) {
      ++rejected;
      std::printf("session rejected: %s\n", id.status().ToString().c_str());
      continue;
    }
    ids.push_back(*id);
  }

  int exit_code = 0;
  for (uint64_t id : ids) {
    mc::Result<mc::SessionOutcome> outcome = manager.Wait(id);
    if (!outcome.ok()) {
      std::fprintf(stderr, "wait(%llu) failed: %s\n",
                   static_cast<unsigned long long>(id),
                   outcome.status().ToString().c_str());
      exit_code = 1;
      continue;
    }
    size_t pairs = 0;
    for (const auto& list : outcome->lists) pairs += list.size();
    std::printf("session %-4llu %-10s %6.1f ms (wait %5.1f ms) "
                "pairs=%-6zu shared_corpus=%d%s%s\n",
                static_cast<unsigned long long>(id),
                mc::SessionStateName(outcome->state),
                outcome->total_seconds * 1000.0,
                outcome->admission_wait_seconds * 1000.0, pairs,
                outcome->used_shared_corpus ? 1 : 0,
                outcome->status.ok()
                    ? ""
                    : (" | " + outcome->status.ToString()).c_str(),
                outcome->checkpoint_status.ok() ? ""
                                                : " | checkpoint failed");
    if (args.explain_plans) PrintPlan(id, *outcome);
    if (outcome->state == mc::SessionState::kFailed) exit_code = 1;
  }

  if (args.deltas > 0) {
    // The apply-delta command: push synthetic row deltas through the
    // incremental path. Each commit bumps the pair's generation and patches
    // the shared plane / corpus / cached lists in place of a rebuild; a
    // follow-up session then runs over the patched planes.
    std::mt19937_64 delta_rng(args.delta_seed);
    for (size_t g = 1; g <= args.deltas; ++g) {
      const mc::TableDelta delta =
          SynthesizeDelta(table_a, table_b, g, delta_rng);
      const mc::Status applied = manager.ApplyTableDelta(pair_key, delta);
      const mc::Result<uint64_t> generation = manager.PairGeneration(pair_key);
      std::printf("delta %-3zu side=%d rows(~%zu/+%zu/-%zu) -> %s "
                  "(generation %llu)\n",
                  g, delta.side, delta.mutated.size(), delta.appended.size(),
                  delta.deleted.size(),
                  applied.ok() ? "applied" : applied.ToString().c_str(),
                  static_cast<unsigned long long>(
                      generation.ok() ? *generation : 0));
      if (!applied.ok()) exit_code = 1;
    }
    mc::Result<uint64_t> id = manager.Submit(request);
    if (id.ok()) {
      mc::Result<mc::SessionOutcome> outcome = manager.Wait(*id);
      if (outcome.ok()) {
        std::printf("post-delta session %llu: %s (plane generation %llu)\n",
                    static_cast<unsigned long long>(*id),
                    mc::SessionStateName(outcome->state),
                    static_cast<unsigned long long>(
                        outcome->plane_generation));
        // A post-delta plan shows the planner re-sampling: its stats_gen
        // follows the patched corpus generation.
        if (args.explain_plans) PrintPlan(*id, *outcome);
        if (outcome->state == mc::SessionState::kFailed) exit_code = 1;
      }
    }
  }

  const mc::ServiceStats stats = manager.stats();
  std::printf(
      "\nservice: submitted=%zu admitted=%zu rejected=%zu completed=%zu "
      "truncated=%zu failed=%zu cancelled=%zu\n"
      "sharing: plane hits/misses=%zu/%zu corpus hits=%zu builds=%zu "
      "evicted=%zu\n"
      "deltas: applied=%zu failed=%zu planes_patched=%zu "
      "corpora_patched=%zu lists repaired/rejoined=%zu/%zu\n"
      "memory: used=%zu peak=%zu rejected_charges=%zu "
      "release_violations=%zu | restored=%zu "
      "restore_failures=%zu watchdog_cancelled=%zu\n"
      "planner: plans=%zu hybrid=%zu restarts=%zu | plan cache "
      "hits/misses=%zu/%zu evicted=%zu\n",
      stats.submitted, stats.admitted, stats.rejected + rejected,
      stats.completed, stats.truncated, stats.failed, stats.cancelled,
      stats.plane_cache_hits, stats.plane_cache_misses,
      stats.corpus_cache_hits, stats.corpus_builds, stats.planes_evicted,
      stats.deltas_applied, stats.delta_failures, stats.planes_patched,
      stats.corpora_patched, stats.lists_repaired, stats.lists_rejoined,
      stats.memory_used_bytes, stats.memory_peak_bytes,
      stats.memory_rejected_charges, stats.memory_release_violations,
      stats.sessions_restored, stats.restore_failures,
      stats.watchdog_cancelled, stats.plans_computed, stats.hybrid_plans,
      stats.hybrid_restarts, stats.plan_cache_hits, stats.plan_cache_misses,
      stats.plans_evicted);
  if (args.explain_plans) {
    // The live calibrated weight vector steers the output-neutral knobs
    // (shard hint) of every fresh plan above — the q ladder stays priced
    // with the pinned defaults (unless MC_PLANNER_CALIBRATE=0 froze the
    // fit at the defaults entirely).
    const mc::CostModelCalibrator& calibrator =
        mc::CostModelCalibrator::Process();
    const mc::CostWeights weights = calibrator.weights();
    std::printf(
        "calibration: observations=%zu refits=%zu weights=(event=%.4f "
        "probe=%.4f score_base=%.4f score_token=%.4f)\n",
        calibrator.observations(), calibrator.refits(), weights.event,
        weights.probe, weights.score_base, weights.score_token);
  }
  if (args.topology) {
    // Snapshot before Shutdown so the shared planes' arenas are still live
    // and show up in the per-node bytes.
    const mc::mem::ArenaStatsSnapshot snapshot =
        mc::mem::ArenaStatsRegistry::Instance().Snapshot();
    std::printf("topology: arenas=%zu reserved=%zu fallbacks=%zu\n",
                snapshot.total_arenas, snapshot.total_reserved_bytes,
                snapshot.topology_fallbacks);
    for (const mc::mem::ArenaNodeStats& node : snapshot.per_node) {
      if (node.node < 0) {
        std::printf("  node -    : arenas=%zu reserved=%zu (unplaced)\n",
                    node.arenas, node.reserved_bytes);
      } else {
        std::printf("  node %-5d: arenas=%zu reserved=%zu\n", node.node,
                    node.arenas, node.reserved_bytes);
      }
    }
  }
  manager.Shutdown();
  if (args.chaos) mc::FaultRegistry::Instance().Reset();
  return exit_code;
}
