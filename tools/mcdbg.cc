// mcdbg — command-line MatchCatcher.
//
// Debug a blocker's output from CSV files:
//
//   mcdbg A.csv B.csv C.csv [options]
//
// A.csv and B.csv are the two tables (same header). C.csv is the blocker
// output: a header line "a,b" followed by 0-based row-index pairs that
// SURVIVED blocking. mcdbg surfaces plausible killed-off matches and runs
// the interactive verification loop on stdin (label each shown pair y/n),
// or automatically against --gold labels.
//
// Options:
//   --k N            top-k per config (default 1000)
//   --n N            pairs shown per iteration (default 20)
//   --q N            QJoin q; 0 = race, 1 = TopKJoin (default 2)
//   --threads N      joint executor workers (default: all cores)
//   --iterations N   stop after N iterations (default: natural stop)
//   --gold FILE      gold matches CSV ("a,b"): label automatically
//   --out FILE       write confirmed matches CSV to FILE
//   --save FILE      save the labels for a later sitting
//   --resume FILE    restore labels saved with --save (same A/B/C inputs)

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "blocking/candidate_set.h"
#include "core/match_catcher.h"
#include "core/session_io.h"
#include "explain/repair.h"
#include "table/csv.h"

namespace {

struct Args {
  std::string table_a, table_b, candidates;
  std::string gold;
  std::string out;
  std::string save_labels;
  std::string resume_labels;
  size_t k = 1000;
  size_t n = 20;
  size_t q = 2;
  size_t threads = 0;
  size_t iterations = 0;  // 0 = natural stop.
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " A.csv B.csv C.csv [--k N] [--n N] [--q N] [--threads N]"
               " [--iterations N] [--gold FILE] [--out FILE]\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--k") {
      const char* v = next();
      if (v == nullptr) return false;
      args->k = std::stoul(v);
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      args->n = std::stoul(v);
    } else if (arg == "--q") {
      const char* v = next();
      if (v == nullptr) return false;
      args->q = std::stoul(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threads = std::stoul(v);
    } else if (arg == "--iterations") {
      const char* v = next();
      if (v == nullptr) return false;
      args->iterations = std::stoul(v);
    } else if (arg == "--gold") {
      const char* v = next();
      if (v == nullptr) return false;
      args->gold = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out = v;
    } else if (arg == "--save") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_labels = v;
    } else if (arg == "--resume") {
      const char* v = next();
      if (v == nullptr) return false;
      args->resume_labels = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 3) return false;
  args->table_a = positional[0];
  args->table_b = positional[1];
  args->candidates = positional[2];
  return true;
}

// Loads an "a,b" row-index pair CSV into a CandidateSet.
mc::Result<mc::CandidateSet> LoadPairs(const std::string& path,
                                       size_t rows_a, size_t rows_b) {
  mc::Result<mc::Table> table = mc::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  if (table->num_columns() < 2) {
    return mc::Status::InvalidArgument(path +
                                       ": expected two columns (a,b)");
  }
  mc::CandidateSet pairs;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::optional<double> a = table->NumericValue(r, 0);
    std::optional<double> b = table->NumericValue(r, 1);
    if (!a.has_value() || !b.has_value() || *a < 0 || *b < 0 ||
        *a >= static_cast<double>(rows_a) ||
        *b >= static_cast<double>(rows_b)) {
      return mc::Status::InvalidArgument(
          path + ": bad pair at data row " + std::to_string(r));
    }
    pairs.Add(static_cast<mc::RowId>(*a), static_cast<mc::RowId>(*b));
  }
  return pairs;
}

// Interactive oracle: asks the terminal user for each pair.
class StdinOracle : public mc::UserOracle {
 public:
  explicit StdinOracle(const mc::DebugSession* session) : session_(session) {}

  bool IsMatch(mc::PairId pair) override {
    std::cout << "\n" << session_->ExplainPair(pair)
              << "match? [y/N] " << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) return false;
    return !line.empty() && (line[0] == 'y' || line[0] == 'Y');
  }

 private:
  const mc::DebugSession* session_;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  mc::Result<mc::Table> table_a = mc::ReadCsvFile(args.table_a);
  if (!table_a.ok()) {
    std::cerr << args.table_a << ": " << table_a.status().ToString() << "\n";
    return 1;
  }
  mc::Result<mc::Table> table_b = mc::ReadCsvFile(args.table_b);
  if (!table_b.ok()) {
    std::cerr << args.table_b << ": " << table_b.status().ToString() << "\n";
    return 1;
  }
  mc::Result<mc::CandidateSet> candidates = LoadPairs(
      args.candidates, table_a->num_rows(), table_b->num_rows());
  if (!candidates.ok()) {
    std::cerr << candidates.status().ToString() << "\n";
    return 1;
  }
  std::cout << "A: " << table_a->num_rows() << " rows, B: "
            << table_b->num_rows() << " rows, |C| = " << candidates->size()
            << "\n";

  mc::MatchCatcherOptions options;
  options.joint.k = args.k;
  options.joint.q = args.q;
  options.joint.num_threads = args.threads;
  options.verifier.pairs_per_iteration = args.n;
  mc::Result<mc::DebugSession> session = mc::DebugSession::Create(
      *table_a, *table_b, *candidates, options);
  if (!session.ok()) {
    std::cerr << "MatchCatcher: " << session.status().ToString() << "\n";
    return 1;
  }
  std::cout << "config tree: " << session->config_tree().size()
            << " configs over " << session->attributes().size()
            << " promising attributes; |E| = "
            << session->CandidatePairs().size() << " candidates ("
            << session->topk_seconds() << "s)\n";

  mc::CandidateSet gold;
  bool use_gold = !args.gold.empty();
  if (use_gold) {
    mc::Result<mc::CandidateSet> loaded = LoadPairs(
        args.gold, table_a->num_rows(), table_b->num_rows());
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    gold = std::move(loaded).value();
  }

  mc::MatchVerifier verifier = session->MakeVerifier();
  if (!args.resume_labels.empty()) {
    mc::Result<std::vector<std::pair<mc::PairId, bool>>> resumed =
        mc::LoadLabeledPairs(args.resume_labels);
    if (!resumed.ok()) {
      std::cerr << resumed.status().ToString() << "\n";
      return 1;
    }
    verifier.PreloadLabels(*resumed);
    std::cout << "resumed " << resumed->size() << " labels ("
              << verifier.confirmed_matches().size()
              << " confirmed matches) from " << args.resume_labels << "\n";
  }
  mc::GoldOracle gold_oracle(&gold);
  StdinOracle stdin_oracle(&*session);
  mc::UserOracle& oracle =
      use_gold ? static_cast<mc::UserOracle&>(gold_oracle)
               : static_cast<mc::UserOracle&>(stdin_oracle);

  mc::VerifierResult result =
      args.iterations > 0 ? verifier.RunIterations(oracle, args.iterations)
                          : verifier.Run(oracle);

  std::cout << "\n" << result.confirmed_matches.size()
            << " killed-off matches confirmed over "
            << result.num_iterations() << " iterations ("
            << result.pairs_shown << " pairs examined)\n";
  for (mc::PairId pair : result.confirmed_matches) {
    std::cout << "  (" << mc::PairRowA(pair) << ", " << mc::PairRowB(pair)
              << ")\n";
  }

  if (!result.confirmed_matches.empty()) {
    std::vector<mc::PairId> confirmed(result.confirmed_matches.begin(),
                                      result.confirmed_matches.end());
    std::cout << "\n"
              << mc::RenderProblemSummary(
                     session->table_a(), session->table_b(),
                     session->SummarizeProblems(confirmed))
              << "\n"
              << mc::RenderRepairs(
                     session->table_a().schema(),
                     mc::SuggestRepairs(session->table_a(),
                                        session->table_b(), confirmed));
  }

  if (!args.save_labels.empty()) {
    mc::Status saved =
        mc::SaveLabeledPairs(verifier.LabeledPairs(), args.save_labels);
    if (!saved.ok()) {
      std::cerr << saved.ToString() << "\n";
      return 1;
    }
    std::cout << "saved " << verifier.LabeledPairs().size() << " labels to "
              << args.save_labels << "\n";
  }

  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << "a,b\n";
    for (mc::PairId pair : result.confirmed_matches) {
      out << mc::PairRowA(pair) << "," << mc::PairRowB(pair) << "\n";
    }
    if (!out) {
      std::cerr << "failed to write " << args.out << "\n";
      return 1;
    }
    std::cout << "wrote " << args.out << "\n";
  }
  return 0;
}
