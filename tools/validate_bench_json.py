#!/usr/bin/env python3
"""Validates machine-readable benchmark records (schema version 1).

Usage: tools/validate_bench_json.py RECORD.json [RECORD.json ...]

Accepts either a single record object (as emitted by `micro_ssj --json=` or
`micro_joint --json=`) or an array of records (the committed
bench/BENCH_ssj.json and bench/BENCH_joint.json archives [before, after]).
The per-record shape is dispatched on the "benchmark" field. Exits non-zero
with a message naming the offending field on the first violation. Run by
the bench-smoke step of tools/ci.sh.
"""

import json
import re
import sys

# Machine context every record must carry (micro_kernels spells these out
# in its own workload schema): the core budget and the active SIMD level,
# without which archived timings are not comparable across runners.
MACHINE_FIELDS = {
    "cpu_cores": int,
    "simd_level": str,
}

WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "config_mask": int,
    "measure": str,
    "k": int,
    "repetitions": int,
}

RESULT_FIELDS = {
    "name": str,
    "q": int,
    "shards": int,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "pairs": int,
    "events_popped": int,
    "pairs_scored": int,
    "topk_checksum": str,
}

JOINT_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "configs": int,
    "k": int,
    "q": int,
    "threads": int,
    "build_threads": int,
    "scheduler": str,
    "view_mode": str,
    "legacy_miss_path": bool,
    "reuse_trigger": (int, float),
    "repetitions": int,
}

# micro_joint stage timings, in emission order.
JOINT_STAGE_NAMES = ["corpus_build", "view_build", "joint_execute",
                     "end_to_end"]

JOINT_STAGE_FIELDS = {
    "name": str,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
}

JOINT_OUTPUT_FIELDS = {
    "pairs": int,
    "cache_hits": int,
    "cache_misses": int,
    "seeded_configs": int,
    "events_popped": int,
    "pairs_scored": int,
    "zero_copy_rows": int,
    "materialized_rows": int,
    "overlap_cache_shards": int,
    "topk_checksum": str,
    "determinism_checked": bool,
    "identical_to_single_thread": bool,
}


TEXT_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "columns": int,
    "promising_columns": int,
    "feature_pairs": int,
    "threads": int,
    "text_plane": str,
    "repetitions": int,
}

# micro_text stage timings, in emission order. Legacy records have no
# plane_build stage (there is no plane to build).
TEXT_STAGE_NAMES = ["plane_build", "profile", "corpus_build", "featurize",
                    "end_to_end"]

TEXT_OUTPUT_FIELDS = {
    "profile_checksum": str,
    "corpus_checksum": str,
    "feature_checksum": str,
    "equivalence_checked": bool,
    "identical_to_legacy": bool,
}

TEXT_CHECKSUM_KEYS = ["profile_checksum", "corpus_checksum",
                      "feature_checksum"]


KERNELS_WORKLOAD_FIELDS = {
    "simd_level": str,
    "simd_level_requested": str,
    "cpu_flags": str,
    "cpu_cores": int,
    "spans": int,
    "kernel_pairs": int,
    "verifier_rows": int,
    "repetitions": int,
}

# micro_kernels stage timings, in emission order.
KERNELS_STAGE_NAMES = ["overlap_kernel", "overlap_capped", "overlap_at_least",
                       "score_many", "verifier_rerank_1t",
                       "verifier_rerank_4t"]

KERNELS_OUTPUT_FIELDS = {
    "overlap_checksum": str,
    "capped_checksum": str,
    "at_least_checksum": str,
    "score_checksum": str,
    "verifier_checksum": str,
    "verifier_identical_across_threads": bool,
}

KERNELS_CHECKSUM_KEYS = ["overlap_checksum", "capped_checksum",
                         "at_least_checksum", "score_checksum",
                         "verifier_checksum"]

KERNELS_LEVELS = ("scalar", "sse4", "avx2")


SERVICE_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "sessions": int,
    "concurrency": int,
    "k": int,
    "threads": int,
    "repetitions": int,
}

# micro_service stage timings, in emission order.
SERVICE_STAGE_NAMES = ["isolated", "shared"]

SERVICE_STAGE_FIELDS = {
    "name": str,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "sessions_per_sec": (int, float),
}

SERVICE_OUTPUT_FIELDS = {
    "shared_speedup": (int, float),
    "admission_p99_millis": (int, float),
    "plane_cache_hits": int,
    "plane_cache_misses": int,
    "plane_hit_rate": (int, float),
    "corpus_cache_hits": int,
    "identical_to_isolated": bool,
    "topk_checksum": str,
}


DELTA_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "generations": int,
    "delta_rows": int,
    "k": int,
    "threads": int,
    "repetitions": int,
    "seed": int,
}

# micro_delta stage timings, in emission order.
DELTA_STAGE_NAMES = ["rebuild", "patch"]

DELTA_STAGE_FIELDS = {
    "name": str,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "generations_per_sec": (int, float),
}

DELTA_OUTPUT_FIELDS = {
    "patch_speedup": (int, float),
    "lists_repaired": int,
    "lists_rejoined": int,
    "dead_token_fraction": (int, float),
    "plane_crc": str,
    "corpus_crc": str,
    "topk_checksum": str,
    "rebuilt_topk_checksum": str,
    "identical_to_rebuild": bool,
}


NUMA_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "k": int,
    "threads": int,
    "repetitions": int,
    "seed": int,
    "machine_nodes": int,
}

# micro_numa placements, in emission order.
NUMA_PLACEMENT_NAMES = ["single_node", "dual_node", "machine"]

NUMA_PLACEMENT_FIELDS = {
    "name": str,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "pairs": int,
    "topk_checksum": str,
}

NUMA_OUTPUT_FIELDS = {
    "dual_node_speedup": (int, float),
    "arena_reserved_bytes": int,
    "live_arenas": int,
    "topology_fallbacks": int,
    "identical_across_placements": bool,
}


PLANNER_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "config_mask": int,
    "measure": str,
    "k": int,
    "repetitions": int,
}

# micro_planner end-to-end paths, in emission order.
PLANNER_PATH_NAMES = ["race_path", "planner_path"]

PLANNER_PATH_FIELDS = {
    "name": str,
    "q": int,
    "shards": int,
    "hybrid": bool,
    "select_seconds": (int, float),
    "join_seconds": (int, float),
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "pairs": int,
    "topk_checksum": str,
}

PLANNER_COMPARISON_FIELDS = {
    "speedup": (int, float),
    "identical_to_race": bool,
    "identical_to_direct": bool,
    "race_q": int,
    "planner_q": int,
    "planner_hybrid": bool,
    "planner_tau": (int, float),
    "planner_sample_rate": int,
    "planner_sample_rows": int,
    "planner_seed": int,
}


PLANCACHE_WORKLOAD_FIELDS = {
    "dataset": str,
    "scale": (int, float),
    "rows_a": int,
    "rows_b": int,
    "k": int,
    "threads": int,
    "max_attributes": int,
    "sessions": int,
    "repetitions": int,
}

# micro_plancache arms, in emission order.
PLANCACHE_ARM_NAMES = ["warm_cached", "warm_fresh_planned"]

PLANCACHE_ARM_FIELDS = {
    "name": str,
    "cold_seconds": (int, float),
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "sessions_per_sec": (int, float),
    "plan_cache_hits": int,
    "plan_cache_misses": int,
    "plans_computed": int,
    "topk_checksum": str,
}

PLANCACHE_COMPARISON_FIELDS = {
    "speedup": (int, float),
    "identical_to_fresh": bool,
    "cached_hit_count": int,
    "fresh_plans_computed": int,
}


class ValidationError(Exception):
    pass


def require(condition, message):
    if not condition:
        raise ValidationError(message)


def check_fields(obj, fields, where):
    require(isinstance(obj, dict), f"{where}: expected an object")
    for name, types in fields.items():
        require(name in obj, f"{where}: missing field '{name}'")
        # bool is an int subclass in Python: reject it for numeric fields,
        # but accept it where the schema asks for bool explicitly.
        wants_bool = types is bool
        require(
            isinstance(obj[name], types)
            and (wants_bool or not isinstance(obj[name], bool)),
            f"{where}: field '{name}' has wrong type "
            f"({type(obj[name]).__name__})",
        )


def check_workload(obj, fields, where):
    """A workload block: the benchmark-specific fields plus the mandatory
    machine context (cpu_cores, simd_level)."""
    check_fields(obj, fields, where)
    check_fields(obj, MACHINE_FIELDS, where)
    require(obj["cpu_cores"] >= 1, f"{where}: cpu_cores must be >= 1")
    require(obj["simd_level"],
            f"{where}: simd_level must be a non-empty string")


def validate_joint_record(record, where):
    """micro_joint_executor: stage timings + a single output block."""
    check_workload(record.get("workload"), JOINT_WORKLOAD_FIELDS,
                   f"{where}.workload")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == JOINT_STAGE_NAMES,
            f"{where}: results must be the stages {JOINT_STAGE_NAMES}")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, JOINT_STAGE_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
    output = record.get("output")
    check_fields(output, JOINT_OUTPUT_FIELDS, f"{where}.output")
    workload = record["workload"]
    require(output["pairs"] <= workload["k"] * workload["configs"],
            f"{where}.output: pairs exceeds k x configs")
    require(re.fullmatch(r"[0-9a-f]{8}", output["topk_checksum"]),
            f"{where}.output: topk_checksum is not 8 lowercase hex digits")
    if output["determinism_checked"]:
        require(output["identical_to_single_thread"],
                f"{where}.output: determinism check ran but failed")


def validate_text_record(record, where):
    """micro_text_plane: stage timings + the three output checksums."""
    check_workload(record.get("workload"), TEXT_WORKLOAD_FIELDS,
                   f"{where}.workload")
    workload = record["workload"]
    require(workload["text_plane"] in ("legacy", "tokenized"),
            f"{where}.workload: text_plane must be legacy|tokenized")
    tokenized = workload["text_plane"] == "tokenized"
    expected_stages = (TEXT_STAGE_NAMES if tokenized
                       else TEXT_STAGE_NAMES[1:])
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == expected_stages,
            f"{where}: results must be the stages {expected_stages}")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, JOINT_STAGE_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
    output = record.get("output")
    check_fields(output, TEXT_OUTPUT_FIELDS, f"{where}.output")
    for key in TEXT_CHECKSUM_KEYS:
        require(re.fullmatch(r"[0-9a-f]{8}", output[key]),
                f"{where}.output: {key} is not 8 lowercase hex digits")
    if tokenized:
        require(output["equivalence_checked"],
                f"{where}.output: tokenized records must run the "
                "legacy-equivalence check")
    if output["equivalence_checked"]:
        require(output["identical_to_legacy"],
                f"{where}.output: equivalence check ran but failed")


def validate_kernels_record(record, where):
    """micro_kernels: per-level stage timings + output checksums."""
    check_fields(record.get("workload"), KERNELS_WORKLOAD_FIELDS,
                 f"{where}.workload")
    workload = record["workload"]
    require(workload["simd_level"] in KERNELS_LEVELS,
            f"{where}.workload: simd_level must be one of {KERNELS_LEVELS}")
    require(workload["simd_level_requested"] in KERNELS_LEVELS + ("auto",),
            f"{where}.workload: simd_level_requested must be "
            f"auto|{'|'.join(KERNELS_LEVELS)}")
    require(workload["cpu_cores"] >= 1,
            f"{where}.workload: cpu_cores must be >= 1")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == KERNELS_STAGE_NAMES,
            f"{where}: results must be the stages {KERNELS_STAGE_NAMES}")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, JOINT_STAGE_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
    output = record.get("output")
    check_fields(output, KERNELS_OUTPUT_FIELDS, f"{where}.output")
    for key in KERNELS_CHECKSUM_KEYS:
        require(re.fullmatch(r"[0-9a-f]{8}", output[key]),
                f"{where}.output: {key} is not 8 lowercase hex digits")
    require(output["verifier_identical_across_threads"],
            f"{where}.output: verifier re-rank differed across thread counts")


def validate_service_record(record, where):
    """micro_service: isolated-vs-shared session timings + sharing stats."""
    check_workload(record.get("workload"), SERVICE_WORKLOAD_FIELDS,
                   f"{where}.workload")
    workload = record["workload"]
    require(workload["sessions"] >= 1 and workload["concurrency"] >= 1,
            f"{where}.workload: sessions and concurrency must be >= 1")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == SERVICE_STAGE_NAMES,
            f"{where}: results must be the stages {SERVICE_STAGE_NAMES}")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, SERVICE_STAGE_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(result["sessions_per_sec"] > 0.0,
                f"{where_r}: sessions_per_sec must be positive")
    output = record.get("output")
    check_fields(output, SERVICE_OUTPUT_FIELDS, f"{where}.output")
    require(output["shared_speedup"] > 0.0,
            f"{where}.output: shared_speedup must be positive")
    require(0.0 <= output["plane_hit_rate"] <= 1.0,
            f"{where}.output: plane_hit_rate must be in [0, 1]")
    require(output["admission_p99_millis"] >= 0.0,
            f"{where}.output: admission_p99_millis must be >= 0")
    require(re.fullmatch(r"[0-9a-f]{8}", output["topk_checksum"]),
            f"{where}.output: topk_checksum is not 8 lowercase hex digits")
    # Sharing is only a cost optimization: shared lists must be
    # bit-identical to isolated sessions, always.
    require(output["identical_to_isolated"],
            f"{where}.output: shared sessions differ from isolated runs")


def validate_delta_record(record, where):
    """micro_delta: patch-vs-rebuild timings + bit-identity checksums."""
    check_workload(record.get("workload"), DELTA_WORKLOAD_FIELDS,
                   f"{where}.workload")
    workload = record["workload"]
    require(workload["generations"] >= 1 and workload["delta_rows"] >= 1,
            f"{where}.workload: generations and delta_rows must be >= 1")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == DELTA_STAGE_NAMES,
            f"{where}: results must be the stages {DELTA_STAGE_NAMES}")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, DELTA_STAGE_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(result["generations_per_sec"] > 0.0,
                f"{where_r}: generations_per_sec must be positive")
    output = record.get("output")
    check_fields(output, DELTA_OUTPUT_FIELDS, f"{where}.output")
    require(output["patch_speedup"] > 0.0,
            f"{where}.output: patch_speedup must be positive")
    require(0.0 <= output["dead_token_fraction"] <= 1.0,
            f"{where}.output: dead_token_fraction must be in [0, 1]")
    for key in ("plane_crc", "corpus_crc", "topk_checksum",
                "rebuilt_topk_checksum"):
        require(re.fullmatch(r"[0-9a-f]{8}", output[key]),
                f"{where}.output: {key} is not 8 lowercase hex digits")
    # Patching is only a cost optimization: the patched lists must be
    # bit-identical to a from-scratch rebuild, always.
    require(output["topk_checksum"] == output["rebuilt_topk_checksum"],
            f"{where}.output: patched topk_checksum differs from rebuild")
    require(output["identical_to_rebuild"],
            f"{where}.output: patched planes differ from a rebuild")


def validate_numa_record(record, where):
    """micro_numa: placement sweep + cross-placement bit-identity."""
    check_workload(record.get("workload"), NUMA_WORKLOAD_FIELDS,
                   f"{where}.workload")
    workload = record["workload"]
    require(workload["machine_nodes"] >= 1,
            f"{where}.workload: machine_nodes must be >= 1")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == NUMA_PLACEMENT_NAMES,
            f"{where}: results must be the placements {NUMA_PLACEMENT_NAMES}")
    checksums = set()
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, NUMA_PLACEMENT_FIELDS, where_r)
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(re.fullmatch(r"[0-9a-f]{8}", result["topk_checksum"]),
                f"{where_r}: topk_checksum is not 8 lowercase hex digits")
        checksums.add(result["topk_checksum"])
    output = record.get("output")
    check_fields(output, NUMA_OUTPUT_FIELDS, f"{where}.output")
    require(output["dual_node_speedup"] > 0.0,
            f"{where}.output: dual_node_speedup must be positive")
    # Placement is only a locality optimization: every topology must produce
    # bit-identical lists, always.
    require(len(checksums) == 1,
            f"{where}: placements disagree on topk_checksum ({checksums})")
    require(output["identical_across_placements"],
            f"{where}.output: placements produced differing results")


def validate_planner_record(record, where):
    """micro_planner: race-vs-planner end-to-end paths + equality proof."""
    check_workload(record.get("workload"), PLANNER_WORKLOAD_FIELDS,
                   f"{where}.workload")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == PLANNER_PATH_NAMES,
            f"{where}: results must be the paths {PLANNER_PATH_NAMES}")
    checksums = {}
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, PLANNER_PATH_FIELDS, where_r)
        require(result["q"] >= 1, f"{where_r}: q must be >= 1")
        require(result["shards"] >= 1, f"{where_r}: shards must be >= 1")
        require(result["select_seconds"] >= 0.0,
                f"{where_r}: select_seconds must be >= 0")
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(result["pairs"] <= record["workload"]["k"],
                f"{where_r}: pairs exceeds workload k")
        require(re.fullmatch(r"[0-9a-f]{8}", result["topk_checksum"]),
                f"{where_r}: topk_checksum is not 8 lowercase hex digits")
        checksums[result["name"]] = result["topk_checksum"]
    comparison = record.get("comparison")
    check_fields(comparison, PLANNER_COMPARISON_FIELDS, f"{where}.comparison")
    require(comparison["speedup"] > 0.0,
            f"{where}.comparison: speedup must be positive")
    # The planner is only a cost optimization: its path must produce output
    # bit-identical to the race path (q-invariant workload) and to a direct
    # run of its own plan, always.
    require(comparison["identical_to_race"],
            f"{where}.comparison: planner output differs from race output")
    require(comparison["identical_to_direct"],
            f"{where}.comparison: planner output differs from a direct run "
            "of its own plan")
    require(checksums["planner_path"] == checksums["race_path"],
            f"{where}: race_path and planner_path checksums disagree "
            f"({checksums})")


def validate_plancache_record(record, where):
    """micro_plancache: cached-vs-fresh session arms + bit-identity proof."""
    check_workload(record.get("workload"), PLANCACHE_WORKLOAD_FIELDS,
                   f"{where}.workload")
    workload = record["workload"]
    require(workload["sessions"] >= 1,
            f"{where}.workload: sessions must be >= 1")
    results = record.get("results")
    require(isinstance(results, list), f"{where}: 'results' must be an array")
    require([r.get("name") for r in results if isinstance(r, dict)]
            == PLANCACHE_ARM_NAMES,
            f"{where}: results must be the arms {PLANCACHE_ARM_NAMES}")
    checksums = {}
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, PLANCACHE_ARM_FIELDS, where_r)
        require(result["cold_seconds"] > 0.0,
                f"{where_r}: cold_seconds must be positive")
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(result["sessions_per_sec"] > 0.0,
                f"{where_r}: sessions_per_sec must be positive")
        require(re.fullmatch(r"[0-9a-f]{8}", result["topk_checksum"]),
                f"{where_r}: topk_checksum is not 8 lowercase hex digits")
        checksums[result["name"]] = result["topk_checksum"]
    cached, fresh = results
    require(cached["plan_cache_hits"] >= 1,
            f"{where}: the cached arm never hit its plan cache")
    require(fresh["plans_computed"] > cached["plans_computed"],
            f"{where}: the fresh arm must re-plan more than the cached arm")
    comparison = record.get("comparison")
    check_fields(comparison, PLANCACHE_COMPARISON_FIELDS,
                 f"{where}.comparison")
    require(comparison["speedup"] > 0.0,
            f"{where}.comparison: speedup must be positive")
    # The plan cache is only a cost optimization: a cached-plan session must
    # produce output bit-identical to a fresh-planned one, always.
    require(checksums["warm_cached"] == checksums["warm_fresh_planned"],
            f"{where}: cached and fresh arms disagree on topk_checksum "
            f"({checksums})")
    require(comparison["identical_to_fresh"],
            f"{where}.comparison: cached-plan sessions differ from "
            "fresh-planned sessions")


def validate_record(record, where):
    require(isinstance(record, dict), f"{where}: expected an object")
    require(record.get("schema_version") == 1,
            f"{where}: schema_version must be 1")
    require(isinstance(record.get("benchmark"), str) and record["benchmark"],
            f"{where}: missing/empty 'benchmark'")
    require(isinstance(record.get("engine"), str) and record["engine"],
            f"{where}: missing/empty 'engine'")
    if record["benchmark"] == "micro_joint_executor":
        validate_joint_record(record, where)
        return
    if record["benchmark"] == "micro_text_plane":
        validate_text_record(record, where)
        return
    if record["benchmark"] == "micro_kernels":
        validate_kernels_record(record, where)
        return
    if record["benchmark"] == "micro_service":
        validate_service_record(record, where)
        return
    if record["benchmark"] == "micro_delta":
        validate_delta_record(record, where)
        return
    if record["benchmark"] == "micro_planner":
        validate_planner_record(record, where)
        return
    if record["benchmark"] == "micro_numa":
        validate_numa_record(record, where)
        return
    if record["benchmark"] == "micro_plancache":
        validate_plancache_record(record, where)
        return
    check_workload(record.get("workload"), WORKLOAD_FIELDS,
                   f"{where}.workload")

    results = record.get("results")
    require(isinstance(results, list) and results,
            f"{where}: 'results' must be a non-empty array")
    for i, result in enumerate(results):
        where_r = f"{where}.results[{i}]"
        check_fields(result, RESULT_FIELDS, where_r)
        require(result["q"] >= 1, f"{where_r}: q must be >= 1")
        require(result["shards"] >= 1, f"{where_r}: shards must be >= 1")
        require(result["best_seconds"] > 0.0,
                f"{where_r}: best_seconds must be positive")
        require(result["mean_seconds"] >= result["best_seconds"],
                f"{where_r}: mean_seconds < best_seconds")
        require(result["pairs"] <= record["workload"]["k"],
                f"{where_r}: pairs exceeds workload k")
        require(re.fullmatch(r"[0-9a-f]{8}", result["topk_checksum"]),
                f"{where_r}: topk_checksum is not 8 lowercase hex digits")


def validate_file(path):
    with open(path) as f:
        data = json.load(f)
    records = data if isinstance(data, list) else [data]
    require(records, f"{path}: empty record array")
    for i, record in enumerate(records):
        where = f"{path}[{i}]" if isinstance(data, list) else path
        validate_record(record, where)
    # A [before, after] text-plane archive must prove identical outputs:
    # the engines are ablations of one another, not different workloads.
    text_outputs = [r["output"] for r in records
                    if isinstance(r, dict)
                    and r.get("benchmark") == "micro_text_plane"]
    for key in TEXT_CHECKSUM_KEYS:
        values = {output[key] for output in text_outputs}
        require(len(values) <= 1,
                f"{path}: micro_text_plane records disagree on {key} "
                f"({sorted(values)})")
    # Cross-level bit-identity: every micro_kernels record on the same
    # workload must produce the same checksums no matter which SIMD level
    # ran — the dispatch contract of simd/kernels.h. Group by workload
    # (minus the level fields) so differently-sized runs don't collide.
    kernels_by_workload = {}
    for r in records:
        if not (isinstance(r, dict) and r.get("benchmark") == "micro_kernels"):
            continue
        key = tuple(sorted((k, v) for k, v in r["workload"].items()
                           if k not in ("simd_level", "simd_level_requested",
                                        "cpu_flags", "cpu_cores")))
        kernels_by_workload.setdefault(key, []).append(r)
    for group in kernels_by_workload.values():
        for key in KERNELS_CHECKSUM_KEYS:
            values = {r["output"][key] for r in group}
            levels = sorted(r["workload"]["simd_level"] for r in group)
            require(len(values) <= 1,
                    f"{path}: micro_kernels levels {levels} disagree on "
                    f"{key} ({sorted(values)})")
    return len(records)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            n = validate_file(path)
        except (ValidationError, json.JSONDecodeError, OSError) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            return 1
        print(f"OK {path}: {n} record(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
