#!/usr/bin/env bash
# CI driver: builds and tests the suite four ways — a plain Release build,
# then AddressSanitizer, ThreadSanitizer, and UBSan builds (MC_SANITIZE,
# see the top-level CMakeLists.txt). Each configuration uses its own build
# tree so the sanitizer runtimes never mix.
#
# Usage: tools/ci.sh [build-root]   (default build root: ./build-ci)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo_root}/build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  local sanitize="$2"
  local build_dir="${build_root}/${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release \
        -DMC_SANITIZE="${sanitize}"
  echo "==== [${name}] build ===="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==== [${name}] test ===="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  # The tokenized-table determinism suite is the data-race canary of the
  # text plane's parallel build; run it by name so sanitizer logs call it
  # out even though the full ctest pass above already covers it.
  echo "==== [${name}] text-plane determinism ===="
  ctest --test-dir "${build_dir}" --output-on-failure \
        -R 'TokenizedTableDeterminismTest'
  # Kernel bit-identity, once per dispatch level: MC_SIMD_LEVEL pins the
  # startup dispatch, and the suite compares every usable level against the
  # scalar merge reference (tests/simd_kernels_test.cc). Under ASan/UBSan
  # this also bounds-checks the vector kernels' boundary loads.
  echo "==== [${name}] simd kernel equivalence per level ===="
  local level
  for level in scalar sse4 avx2; do
    MC_SIMD_LEVEL="${level}" ctest --test-dir "${build_dir}" \
        --output-on-failure -R 'SimdKernels'
  done
}

run_config release ""
run_config asan address
run_config tsan thread
run_config ubsan undefined

# Service chaos: the session-service survival contract (docs/robustness.md)
# under the sanitizers that catch what a green exit code can't — leaks and
# lifetime bugs under ASan, lock-order and data races under TSan. The fixed
# seed matrix re-runs the harness's concurrent fault/cancel/evict schedules
# beyond the built-in seeds; every admitted session must still end terminal.
echo "==== [service-chaos] chaos suite under ASan + TSan ===="
for config in asan tsan; do
  for seed in 101 202 303 8675309; do
    echo "---- [service-chaos] ${config} seed ${seed} ----"
    MC_CHAOS_SEED="${seed}" ctest --test-dir "${build_root}/${config}" \
        --output-on-failure -R 'ServiceChaosTest'
  done
done

# Delta equivalence: incremental plane/corpus/list patching must stay
# bit-identical to from-scratch rebuilds across randomized delta schedules,
# including faults mid-patch (a failed patch leaves the prior generation
# intact). ASan catches arena lifetime bugs in the CSR patchers; TSan
# catches races between ApplyTableDelta and in-flight sessions pinned to
# the superseded generation. The seed matrix extends the built-in seeds.
echo "==== [delta-equivalence] patch-vs-rebuild suite under ASan + TSan ===="
for config in asan tsan; do
  for seed in 7 1234 424242; do
    echo "---- [delta-equivalence] ${config} seed ${seed} ----"
    MC_DELTA_SEED="${seed}" ctest --test-dir "${build_root}/${config}" \
        --output-on-failure -R 'DeltaEquivalenceTest|ServiceEvictionTest'
  done
done

# Planner equivalence: the cost-based join planner must pick plans whose
# execution is bit-identical to running the same plan directly, across
# measures, k values, hybrid prefilter paths (done + forced restart), and
# the joint executor's q = 0 dispatch — and the decisions themselves must be
# deterministic per MC_PLANNER_SEED. ASan covers the sampling probes' view
# lifetimes; the seed matrix moves the systematic-sample offset so different
# table-A row subsets drive the cost model each run.
echo "==== [planner] planner-vs-direct equivalence under ASan ===="
for seed in 42 31337 909090909; do
  echo "---- [planner] asan MC_PLANNER_SEED=${seed} ----"
  MC_PLANNER_SEED="${seed}" ctest --test-dir "${build_root}/asan" \
      --output-on-failure \
      -R 'PlannerEquivalence|PlannerDeterminism|PlannerStatsDelta|JointPlanner'
done

# Plan cache + threshold mode: threshold-join execution and cached-plan
# sessions must stay bit-identical to classic fresh-planned top-k runs, the
# plan-cache fault point must degrade to re-planning (never wrong output),
# and the online cost-model calibration must never change the joined bytes
# (it steers only output-neutral plan knobs). ASan covers the truncated
# prefix views and cached-plan lifetimes; the seed matrix moves the
# randomized delta schedules of the invalidation tests. The calibration
# determinism check runs the suite once with the calibrator disabled — same
# tests, same outputs, proving MC_PLANNER_CALIBRATE is an ablation of cost,
# not results.
echo "==== [plan-cache] threshold/plan-cache suites under ASan ===="
for seed in 5 17 90210; do
  echo "---- [plan-cache] asan MC_PLANCACHE_SEED=${seed} ----"
  MC_PLANCACHE_SEED="${seed}" ctest --test-dir "${build_root}/asan" \
      --output-on-failure \
      -R 'ThresholdJoin|ThresholdPrefixLength|PlanCache|CostCalibrator'
done
echo "==== [plan-cache] calibration determinism (MC_PLANNER_CALIBRATE=0) ===="
MC_PLANNER_CALIBRATE=0 ctest --test-dir "${build_root}/release" \
    --output-on-failure \
    -R 'ThresholdJoin|PlanCache|CostCalibrator|PlannerEquivalence'

# Topology: placement must move bytes and threads, never results. The mem
# suite (arena/budget/topology unit tests plus the placement bit-identity
# matrix) runs under ASan for arena lifetime coverage, and the determinism
# suites re-run under forced single-node and fake dual-node MC_TOPOLOGY so
# the multi-node decomposition paths (A-row windows, node-routed shards,
# replicated seeds) are exercised deterministically on any CI machine.
echo "==== [topology] mem suite under ASan ===="
ctest --test-dir "${build_root}/asan" --output-on-failure \
    -R 'ArenaTest|ArenaVectorTest|ArenaStatsTest|TopologyTest|PerNodeReplicaTest|TopologyThreadPoolTest|BudgetConservationTest|TopologyPlacementIdentityTest'
echo "==== [topology] determinism suites under forced topologies ===="
for topo in "nodes=1,cores_per_node=4" "nodes=2,cores_per_node=2"; do
  echo "---- [topology] MC_TOPOLOGY=${topo} ----"
  MC_TOPOLOGY="${topo}" ctest --test-dir "${build_root}/release" \
      --output-on-failure \
      -R 'JointDeterminismTest|CorpusBuildDeterminismTest|DeltaEquivalenceTest|TopologyPlacementIdentityTest'
done

# Bench smoke: emit a perf record on a tiny workload and validate its schema
# (plus the committed archive). Catches drift between the JSON writer, the
# record schema, and tools/validate_bench_json.py without a full bench run.
echo "==== [bench-smoke] emit + validate perf record ===="
bench_json="${build_root}/release/bench_smoke.json"
"${build_root}/release/bench/micro_ssj" \
    --json="${bench_json}" --engine=ci-smoke --scale=0.002 --reps=1
joint_json="${build_root}/release/bench_smoke_joint.json"
"${build_root}/release/bench/micro_joint" \
    --json="${joint_json}" --engine=ci-smoke --scale=0.05 --reps=1 --k=50
text_json="${build_root}/release/bench_smoke_text.json"
"${build_root}/release/bench/micro_text" \
    --json="${text_json}" --engine=ci-smoke --scale=0.1 --reps=1 --pairs=2000
# micro_kernels: one smoke record per dispatch level, merged into a single
# array so the validator's cross-level checksum-equality check runs on
# fresh data (not just the committed archive).
kernels_json="${build_root}/release/bench_smoke_kernels.json"
for level in scalar sse4 avx2; do
  "${build_root}/release/bench/micro_kernels" \
      --json="${build_root}/release/bench_smoke_kernels_${level}.json" \
      --engine=ci-smoke --simd-level="${level}" \
      --spans=512 --pairs=20000 --verifier-rows=120 --reps=1
done
python3 - "${kernels_json}" \
    "${build_root}/release/bench_smoke_kernels_"{scalar,sse4,avx2}.json \
    <<'PY'
import json, sys
out, *parts = sys.argv[1:]
json.dump([json.load(open(p)) for p in parts], open(out, "w"), indent=1)
PY
service_json="${build_root}/release/bench_smoke_service.json"
"${build_root}/release/bench/micro_service" \
    --json="${service_json}" --engine=ci-smoke --scale=0.02 --reps=1 \
    --sessions=4 --concurrency=2
# micro_delta exits 1 on any patch-vs-rebuild divergence; the validator
# re-checks the checksum equality on both the smoke record and the archive.
delta_json="${build_root}/release/bench_smoke_delta.json"
"${build_root}/release/bench/micro_delta" \
    --json="${delta_json}" --engine=ci-smoke --scale=0.05 --reps=1 \
    --generations=3
# micro_planner exits 1 unless the planner path's output is bit-identical to
# both the race path and a direct run of its own plan; the validator
# re-checks the checksum equality on the smoke record and the archive.
planner_json="${build_root}/release/bench_smoke_planner.json"
"${build_root}/release/bench/micro_planner" \
    --json="${planner_json}" --engine=ci-smoke --scale=0.01 --reps=1 --k=50
# micro_numa exits 1 unless every placement (single-node, dual-node,
# machine) produces bit-identical lists; the validator re-checks the
# cross-placement checksum equality on the smoke record and the archive.
numa_json="${build_root}/release/bench_smoke_numa.json"
"${build_root}/release/bench/micro_numa" \
    --json="${numa_json}" --engine=ci-smoke --scale=0.05 --reps=1
# micro_plancache exits 1 unless every cached-plan session is bit-identical
# to the fresh-planned arm; the validator re-checks the cached-vs-fresh
# checksum equality on the smoke record and the archive.
plancache_json="${build_root}/release/bench_smoke_plancache.json"
"${build_root}/release/bench/micro_plancache" \
    --json="${plancache_json}" --engine=ci-smoke --scale=0.02 --reps=1 \
    --sessions=3
python3 "${repo_root}/tools/validate_bench_json.py" \
    "${bench_json}" "${joint_json}" "${text_json}" "${kernels_json}" \
    "${service_json}" "${delta_json}" "${planner_json}" "${numa_json}" \
    "${plancache_json}" \
    "${repo_root}/bench/BENCH_ssj.json" \
    "${repo_root}/bench/BENCH_joint.json" \
    "${repo_root}/bench/BENCH_text.json" \
    "${repo_root}/bench/BENCH_kernels.json" \
    "${repo_root}/bench/BENCH_service.json" \
    "${repo_root}/bench/BENCH_delta.json" \
    "${repo_root}/bench/BENCH_planner.json" \
    "${repo_root}/bench/BENCH_numa.json" \
    "${repo_root}/bench/BENCH_plancache.json"

echo "==== all configurations passed ===="
